"""Axis-aligned integer rectangles.

Rectangles are the primitive of the whole reproduction: layout features,
phase shifters, overlap regions and inserted spaces are all ``Rect``
instances in integer database units (nm).  The class is immutable so rects
can be dict keys and set members, which the conflict-graph construction
relies on.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .interval import Interval


@dataclass(frozen=True, order=True, slots=True)
class Rect:
    """Closed axis-aligned rectangle ``[x1, x2] x [y1, y2]``.

    Degenerate (zero width or height) rectangles are rejected: layout
    features always have positive area.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 >= self.x2 or self.y1 >= self.y2:
            raise ValueError(
                f"Degenerate rect ({self.x1},{self.y1},{self.x2},{self.y2})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_center(cx: int, cy: int, width: int, height: int) -> "Rect":
        """Rect centred on (cx, cy); width/height must be even to stay
        on the integer grid."""
        if width <= 0 or height <= 0:
            raise ValueError("width/height must be positive")
        return Rect(cx - width // 2, cy - height // 2,
                    cx - width // 2 + width, cy - height // 2 + height)

    @staticmethod
    def from_spans(xspan: Interval, yspan: Interval) -> "Rect":
        return Rect(xspan.lo, yspan.lo, xspan.hi, yspan.hi)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def min_dimension(self) -> int:
        """The critical dimension of the shape (its drawn line width)."""
        return min(self.width, self.height)

    @property
    def max_dimension(self) -> int:
        return max(self.width, self.height)

    @property
    def xspan(self) -> Interval:
        return Interval(self.x1, self.x2)

    @property
    def yspan(self) -> Interval:
        return Interval(self.y1, self.y2)

    @property
    def center2(self) -> Tuple[int, int]:
        """Twice the centre point, kept integral for exact geometry."""
        return (self.x1 + self.x2, self.y1 + self.y2)

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def is_vertical(self) -> bool:
        """True when the shape runs vertically (height >= width)."""
        return self.height >= self.width

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """Closed intersection test (touching rects intersect)."""
        return (self.x1 <= other.x2 and other.x1 <= self.x2 and
                self.y1 <= other.y2 and other.y1 <= self.y2)

    def strictly_intersects(self, other: "Rect") -> bool:
        """Open intersection test (positive-area overlap)."""
        return (self.x1 < other.x2 and other.x1 < self.x2 and
                self.y1 < other.y2 and other.y1 < self.y2)

    def contains_point(self, x: int, y: int) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (self.x1 <= other.x1 and other.x2 <= self.x2 and
                self.y1 <= other.y1 and other.y2 <= self.y2)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Positive-area intersection, or None."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 >= x2 or y1 >= y2:
            return None
        return Rect(x1, y1, x2, y2)

    def x_gap(self, other: "Rect") -> int:
        """Gap between x-projections (``<= 0`` when they overlap in x)."""
        return self.xspan.gap_to(other.xspan)

    def y_gap(self, other: "Rect") -> int:
        return self.yspan.gap_to(other.yspan)

    def separation_sq(self, other: "Rect") -> int:
        """Squared Euclidean separation between the two closed rects.

        Standard DRC semantics: 0 if the rects touch or overlap; the gap
        in the free axis if their projections overlap in the other axis;
        corner-to-corner Euclidean distance otherwise.  Returned squared
        so callers can compare against ``rule*rule`` exactly in ints.
        """
        dx = max(0, self.x_gap(other))
        dy = max(0, self.y_gap(other))
        return dx * dx + dy * dy

    def separation(self, other: "Rect") -> float:
        return math.sqrt(self.separation_sq(other))

    def within_distance(self, other: "Rect", dist: int) -> bool:
        """True if the rect separation is strictly less than ``dist``."""
        return self.separation_sq(other) < dist * dist

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    def inflated(self, amount: int) -> "Rect":
        """Grow all four sides outward by ``amount`` (may be negative)."""
        return Rect(self.x1 - amount, self.y1 - amount,
                    self.x2 + amount, self.y2 + amount)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def hull(self, other: "Rect") -> "Rect":
        return Rect(min(self.x1, other.x1), min(self.y1, other.y1),
                    max(self.x2, other.x2), max(self.y2, other.y2))

    def between_region(self, other: "Rect") -> Optional["Rect"]:
        """The open region separating two disjoint rects, if box-like.

        For two rects whose x-projections overlap but y-projections do
        not, this is the rectangle spanning the y-gap over the common
        x-range (and symmetrically).  Used by the feature-graph builder
        to place "conflict nodes" at the centre of the overlap *region*,
        which is the geometric detour the paper criticises.  Returns
        None for corner-to-corner or intersecting configurations.
        """
        xi = self.xspan.intersection(other.xspan)
        yi = self.yspan.intersection(other.yspan)
        if xi is not None and yi is None and xi.length > 0:
            lo, hi = ((self, other) if self.y2 <= other.y1 else (other, self))
            if lo.y2 < hi.y1:
                return Rect(xi.lo, lo.y2, xi.hi, hi.y1)
            return None
        if yi is not None and xi is None and yi.length > 0:
            lo, hi = ((self, other) if self.x2 <= other.x1 else (other, self))
            if lo.x2 < hi.x1:
                return Rect(lo.x2, yi.lo, hi.x1, yi.hi)
            return None
        return None


# ----------------------------------------------------------------------
# Batch (struct-of-arrays) predicates — the raw material of the numpy
# geometry kernel.  Each mirrors a scalar Rect method exactly, in int64,
# so batch and scalar paths agree bit-for-bit.  numpy imports lazily so
# the scalar backend never pays for it.
# ----------------------------------------------------------------------

_rect_corners = operator.attrgetter("x1", "y1", "x2", "y2")


class RectList(list):
    """A rect list that can carry its int64 columns.

    :func:`rect_columns` memoizes its result on the ``columns`` slot, so
    producers that hand the same (immutable-by-convention) rect list to
    several kernel calls — e.g. ``ShifterSet.rects`` — pay the
    struct-of-arrays conversion once.
    """

    __slots__ = ("columns",)

    def __init__(self, rects: Iterable["Rect"] = ()) -> None:
        super().__init__(rects)
        self.columns = None


def rect_columns(rects: Iterable["Rect"]):
    """Struct-of-arrays int64 columns ``(x1, y1, x2, y2)`` of a rect list."""
    cols = getattr(rects, "columns", None)
    if cols is not None:
        return cols
    import numpy as np

    # attrgetter is C-level: materializing hundreds of thousands of
    # rows this way is measurably cheaper than a Python listcomp.
    rows = list(map(_rect_corners, rects))
    if not rows:
        e = np.empty(0, dtype=np.int64)
        cols = (e, e.copy(), e.copy(), e.copy())
    else:
        arr = np.array(rows, dtype=np.int64)
        cols = (arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    if isinstance(rects, RectList):
        rects.columns = cols
    return cols


def batch_expanded(x1, y1, x2, y2, amount: int):
    """Vectorized :meth:`Rect.inflated`: grow all four sides outward."""
    return x1 - amount, y1 - amount, x2 + amount, y2 + amount


def batch_intersects(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
    """Vectorized :meth:`Rect.intersects` (closed test) boolean mask."""
    return ((ax1 <= bx2) & (bx1 <= ax2) &
            (ay1 <= by2) & (by1 <= ay2))


def batch_hull(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
    """Vectorized :meth:`Rect.hull`: columns of the pairwise hulls."""
    import numpy as np

    return (np.minimum(ax1, bx1), np.minimum(ay1, by1),
            np.maximum(ax2, bx2), np.maximum(ay2, by2))


def batch_separation_sq(x_gap, y_gap):
    """Vectorized :meth:`Rect.separation_sq` from per-axis gap columns
    (see :func:`repro.geometry.interval.batch_gap`)."""
    import numpy as np

    dx = np.maximum(x_gap, 0)
    dy = np.maximum(y_gap, 0)
    return dx * dx + dy * dy


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Hull of a collection of rects (None for an empty collection)."""
    it = iter(rects)
    try:
        box = next(it)
    except StopIteration:
        return None
    for r in it:
        box = box.hull(r)
    return box


def union_area(rects: Iterable[Rect]) -> int:
    """Exact area of the union of rectangles (coordinate-compression sweep).

    O(n^2) in the worst case but n here is a layout window or a shifter
    neighbourhood, not a full chip; the full-chip statistics use layer
    bookkeeping instead.
    """
    rects = list(rects)
    if not rects:
        return 0
    xs = sorted({r.x1 for r in rects} | {r.x2 for r in rects})
    total = 0
    for xa, xb in zip(xs, xs[1:]):
        if xa == xb:
            continue
        spans = [r.yspan for r in rects if r.x1 <= xa and r.x2 >= xb]
        if not spans:
            continue
        covered = 0
        last = None
        for iv in sorted(spans):
            lo = iv.lo if last is None else max(iv.lo, last)
            if iv.hi > lo:
                covered += iv.hi - lo
            last = iv.hi if last is None else max(last, iv.hi)
        total += covered * (xb - xa)
    return total


def pairwise_disjoint(rects: List[Rect]) -> bool:
    """True when no two rects have a positive-area overlap."""
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            if a.strictly_intersects(b):
                return False
    return True
