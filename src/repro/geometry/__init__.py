"""Integer Manhattan geometry kernel (substrate S1).

Everything downstream — layouts, shifters, conflict graphs, the space
insertion engine — is built on the exact integer primitives exported
here.
"""

from .interval import (
    Interval,
    endpoints,
    interval_point_cover,
    merge_intervals,
    stab_count,
    total_length,
)
from .rect import Rect, bounding_box, pairwise_disjoint, union_area
from .segment import (
    intersection_point,
    on_segment,
    orientation,
    point_on_open_segment,
    proper_crossing,
    segment_bbox,
    segments_conflict,
    segments_intersect,
)
from .kernels import (
    KERNEL_BACKENDS,
    GeometryKernel,
    get_kernel,
    make_kernel,
    register_kernel,
    set_default_kernel,
    use_kernel,
)
from .spatial import GridIndex, grid_neighbor_pairs, neighbor_pairs

__all__ = [
    "Interval",
    "merge_intervals",
    "total_length",
    "interval_point_cover",
    "endpoints",
    "stab_count",
    "Rect",
    "bounding_box",
    "union_area",
    "pairwise_disjoint",
    "orientation",
    "on_segment",
    "segments_intersect",
    "proper_crossing",
    "segments_conflict",
    "point_on_open_segment",
    "segment_bbox",
    "intersection_point",
    "GridIndex",
    "grid_neighbor_pairs",
    "neighbor_pairs",
    "GeometryKernel",
    "KERNEL_BACKENDS",
    "get_kernel",
    "make_kernel",
    "register_kernel",
    "set_default_kernel",
    "use_kernel",
]
