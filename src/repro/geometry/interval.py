"""Closed integer intervals on a single axis.

All layout arithmetic in :mod:`repro` is done in integer database units
(1 dbu = 1 nm by convention), so intervals are closed ``[lo, hi]`` ranges
with integer endpoints.  An interval with ``lo == hi`` is a single point
and is considered non-empty; emptiness is only produced by operations such
as :meth:`Interval.intersection` and is represented by ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"Interval lo={self.lo} > hi={self.hi}")

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Extent of the interval (0 for a single point)."""
        return self.hi - self.lo

    @property
    def center2(self) -> int:
        """Twice the centre coordinate (kept integral)."""
        return self.lo + self.hi

    def __contains__(self, x: int) -> bool:
        return self.lo <= x <= self.hi

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def overlaps(self, other: "Interval") -> bool:
        """True if the closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def strictly_overlaps(self, other: "Interval") -> bool:
        """True if the open interiors intersect (more than a point touch)."""
        return self.lo < other.hi and other.lo < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def gap_to(self, other: "Interval") -> int:
        """Distance between the intervals; ``<= 0`` when they overlap.

        A negative result is minus the overlap length, which is often a
        useful quantity for spacing computations.
        """
        if other.lo > self.hi:
            return other.lo - self.hi
        if self.lo > other.hi:
            return self.lo - other.hi
        return -min(self.hi, other.hi) + max(self.lo, other.lo)

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expanded(self, amount: int) -> "Interval":
        """Grow (or shrink, if negative) both ends by ``amount``."""
        return Interval(self.lo - amount, self.hi + amount)

    def shifted(self, delta: int) -> "Interval":
        return Interval(self.lo + delta, self.hi + delta)


def batch_gap(alo, ahi, blo, bhi):
    """Vectorized :meth:`Interval.gap_to` over parallel endpoint arrays.

    All three branches of the scalar method collapse to one exact
    integer formula — ``max(lo) - min(hi)`` — which is what makes the
    numpy kernel bit-identical: positive for disjoint intervals,
    ``<= 0`` (minus the overlap length) otherwise.  Accepts numpy
    arrays (any broadcastable shapes) and returns an int64 array.
    """
    import numpy as np

    return np.maximum(alo, blo) - np.minimum(ahi, bhi)


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/touching closed intervals into a disjoint list."""
    merged: List[Interval] = []
    for iv in sorted(intervals):
        if merged and iv.lo <= merged[-1].hi:
            if iv.hi > merged[-1].hi:
                merged[-1] = Interval(merged[-1].lo, iv.hi)
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Sequence[Interval]) -> int:
    """Total measure of a set of intervals counting overlaps once."""
    return sum(iv.length for iv in merge_intervals(intervals))


def interval_point_cover(intervals: Sequence[Interval]) -> List[int]:
    """Return a minimal set of points stabbing every interval.

    Classic greedy: sort by right endpoint, pick it whenever the current
    interval is not yet stabbed.  Used by the correction grid-line
    pre-selection and in tests as a lower-bound oracle for set cover.
    """
    points: List[int] = []
    for iv in sorted(intervals, key=lambda i: i.hi):
        if not points or points[-1] < iv.lo:
            points.append(iv.hi)
    return points


def endpoints(intervals: Iterable[Interval]) -> List[int]:
    """Sorted unique endpoints of a collection of intervals."""
    pts = set()
    for iv in intervals:
        pts.add(iv.lo)
        pts.add(iv.hi)
    return sorted(pts)


def stab_count(intervals: Sequence[Interval], x: int) -> int:
    """Number of intervals containing the point ``x``."""
    return sum(1 for iv in intervals if x in iv)


Span = Tuple[int, int]
