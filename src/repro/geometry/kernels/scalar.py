"""The scalar (pure-Python) geometry kernel — the bit-exact oracle.

This backend is the original ``GridIndex``-based sweep, unchanged in
behaviour: every other backend is validated against it, pair for pair
and byte for byte, by ``tests/geometry/test_kernels.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .base import GeometryKernel, PairRow


class ScalarKernel(GeometryKernel):
    """Grid-accelerated scalar sweep plus per-pair ``Rect`` arithmetic."""

    name = "scalar"

    def neighbor_pairs(self, rects: Sequence, dist: int
                       ) -> List[Tuple[int, int]]:
        from ..spatial import grid_neighbor_pairs
        return grid_neighbor_pairs(rects, dist)

    def overlap_rows(self, rects: Sequence, dist: int,
                     groups: Optional[Sequence[int]] = None
                     ) -> List[PairRow]:
        rows: List[PairRow] = []
        for i, j in self.neighbor_pairs(rects, dist):
            if groups is not None and groups[i] == groups[j]:
                continue
            ri, rj = rects[i], rects[j]
            rows.append((i, j, ri.separation_sq(rj),
                         ri.x_gap(rj), ri.y_gap(rj)))
        return rows

    def region_centers2(self, rects: Sequence,
                        pairs: Sequence[Tuple[int, int]]
                        ) -> List[Tuple[int, int]]:
        from ...shifters.overlap import region_center2
        return [region_center2(rects[i], rects[j]) for i, j in pairs]
