"""Name-resolved geometry kernel backends (``scalar`` oracle, ``numpy``)."""

from .base import (
    DEFAULT_KERNEL,
    KERNEL_BACKENDS,
    KERNEL_ENV,
    GeometryKernel,
    get_kernel,
    make_kernel,
    register_kernel,
    set_default_kernel,
    use_kernel,
)

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_BACKENDS",
    "KERNEL_ENV",
    "GeometryKernel",
    "get_kernel",
    "make_kernel",
    "register_kernel",
    "set_default_kernel",
    "use_kernel",
]
