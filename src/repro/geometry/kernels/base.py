"""Pluggable geometry kernel backends.

The cold path spends most of its repo-owned time in three geometry
loops: candidate-pair generation (``neighbor_pairs``), Condition-2
overlap measurement (``find_overlap_pairs``) and per-pair region
arithmetic.  A *kernel* packages batch implementations of exactly
those loops behind a tiny interface so the rest of the pipeline —
ordering, weights, tie-breaking, graph assembly — stays scalar and
operates on kernel **output** (sorted ``(i, j)`` index arrays).

Two backends ship:

``scalar``
    The original pure-Python ``GridIndex`` sweep.  It is the oracle:
    every other backend must reproduce its output bit-for-bit.

``numpy``
    Struct-of-arrays columns + a vectorized sort/searchsorted sweep.
    All predicates are evaluated in exact int64 arithmetic, so the
    output is identical to the scalar backend, just faster.

The registry mirrors the executor-backend idiom in
:mod:`repro.chip.executor`: backends are name-resolved through
``KERNEL_BACKENDS`` so ``--kernels`` flags and config fields validate
against the live registry, and external code can
:func:`register_kernel` its own backend.

Kernel choice is *ambient*: :func:`get_kernel` returns the active
kernel (thread-local override first, then the process default, which
the ``REPRO_KERNELS`` environment variable seeds).  Because every
backend is bit-identical, the kernel name deliberately does **not**
enter any cache key — artifacts computed under one backend are valid
under all of them.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: ``(i, j, separation_sq, x_gap, y_gap)`` — one measured candidate pair.
PairRow = Tuple[int, int, int, int, int]

DEFAULT_KERNEL = "scalar"

#: Environment variable that seeds the process-default kernel, so whole
#: test suites can run under an alternate backend without code changes.
KERNEL_ENV = "REPRO_KERNELS"


class GeometryKernel:
    """Batch geometry operations over lists of :class:`~repro.geometry.Rect`.

    Subclasses implement the three hot loops.  The contract is exact:
    all arithmetic is integer, all outputs are sorted by ``(i, j)``
    with ``i < j``, and every backend must agree with ``scalar``
    bit-for-bit on every input.
    """

    name = "abstract"

    def neighbor_pairs(self, rects: Sequence, dist: int
                       ) -> List[Tuple[int, int]]:
        """Indices ``(i, j), i < j`` of pairs with separation < ``dist``."""
        raise NotImplementedError

    def overlap_rows(self, rects: Sequence, dist: int,
                     groups: Optional[Sequence[int]] = None
                     ) -> List[PairRow]:
        """Measured candidate pairs, sorted by ``(i, j)``.

        ``groups[i] == groups[j]`` pairs are exempt (Condition-1
        flanking pairs share a feature id and are skipped).
        """
        raise NotImplementedError

    def region_centers2(self, rects: Sequence,
                        pairs: Sequence[Tuple[int, int]]
                        ) -> List[Tuple[int, int]]:
        """Doubled overlap-region centre for each ``(i, j)`` pair."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GeometryKernel {self.name}>"


# ----------------------------------------------------------------------
# Registry (name -> factory), mirroring chip.executor's EXECUTOR_BACKENDS.
# Factories import lazily so the numpy backend only loads when asked for.
# ----------------------------------------------------------------------

def _scalar_factory() -> GeometryKernel:
    from .scalar import ScalarKernel
    return ScalarKernel()


def _numpy_factory() -> GeometryKernel:
    try:
        from .numpy_kernel import NumpyKernel
    except ImportError as exc:  # pragma: no cover - numpy is a core dep
        raise ImportError(
            "the 'numpy' geometry kernel requires numpy; install it or "
            "select --kernels scalar") from exc
    return NumpyKernel()


KERNEL_BACKENDS: Dict[str, Callable[[], GeometryKernel]] = {
    "scalar": _scalar_factory,
    "numpy": _numpy_factory,
}


def register_kernel(name: str,
                    factory: Callable[[], GeometryKernel]) -> None:
    """Register (or replace) a kernel backend under ``name``."""
    KERNEL_BACKENDS[name] = factory


def make_kernel(name: str) -> GeometryKernel:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` listing the known backends for unknown names,
    so CLI validation errors are self-describing.
    """
    try:
        factory = KERNEL_BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_BACKENDS))
        raise ValueError(
            f"unknown kernel backend {name!r} (known: {known})") from None
    return factory()


# ----------------------------------------------------------------------
# Ambient kernel selection: thread-local override over a process default.
# ----------------------------------------------------------------------

_local = threading.local()
_default_lock = threading.Lock()
_default: Optional[GeometryKernel] = None


def _process_default() -> GeometryKernel:
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = make_kernel(
                    os.environ.get(KERNEL_ENV, DEFAULT_KERNEL))
    return _default


def set_default_kernel(name: Optional[str]) -> None:
    """Set (or with ``None``, reset to env/scalar) the process default."""
    global _default
    with _default_lock:
        _default = None if name is None else make_kernel(name)


def get_kernel() -> GeometryKernel:
    """The active kernel: thread-local override, else process default."""
    kernel = getattr(_local, "kernel", None)
    if kernel is not None:
        return kernel
    return _process_default()


@contextmanager
def use_kernel(kernel: Union[GeometryKernel, str, None]
               ) -> Iterator[GeometryKernel]:
    """Scope the active kernel for the current thread.

    Accepts a backend name, a kernel instance, or ``None`` (inherit the
    ambient kernel — lets config plumbing pass its ``kernels`` field
    through unconditionally).
    """
    if kernel is None:
        resolved = get_kernel()
    elif isinstance(kernel, str):
        resolved = make_kernel(kernel)
    else:
        resolved = kernel
    prev = getattr(_local, "kernel", None)
    _local.kernel = resolved
    try:
        yield resolved
    finally:
        _local.kernel = prev
