"""Numpy geometry kernel: struct-of-arrays columns + vectorized sweep.

The backend mirrors the scalar oracle's semantics exactly — all
arithmetic stays in int64, every comparison is the same strict/closed
test the ``Rect``/``Interval`` methods perform — so its output is
bit-identical, just computed a few thousand rows at a time.

Candidate generation is a plane sweep over the x-sorted rect array:
after a stable argsort by ``x1``, every pair within interaction
distance ``d`` satisfies ``x1[q] < x2[p] + d`` for the earlier rect
``p``, so ``searchsorted`` bounds each rect's candidate window and the
windows are materialized block-wise (bounded memory) as flat ``(p, q)``
index arrays.  Exact integer gap/separation masks then filter the
superset, and the surviving rows are mapped back through the sort
order, normalized to ``i < j`` and lexsorted — the same sorted pair
list the scalar backend emits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..interval import batch_gap
from ..rect import batch_separation_sq, rect_columns
from .base import GeometryKernel, PairRow

#: Upper bound on candidate rows materialized per sweep block.
SWEEP_BLOCK = 1 << 18


class RectArray:
    """Struct-of-arrays view of a rect list: int64 columns + feature ids.

    The per-tile working set of the numpy backend — built once per
    kernel call from the scalar ``Rect`` objects, then every batch
    operation works on the columns.
    """

    __slots__ = ("x1", "y1", "x2", "y2", "ids", "n")

    def __init__(self, x1, y1, x2, y2, ids=None):
        self.x1, self.y1, self.x2, self.y2 = x1, y1, x2, y2
        self.ids = ids
        self.n = int(x1.shape[0])

    @classmethod
    def from_rects(cls, rects: Sequence,
                   ids: Optional[Sequence[int]] = None) -> "RectArray":
        x1, y1, x2, y2 = rect_columns(rects)
        id_col = None
        if ids is not None:
            id_col = np.asarray(ids, dtype=np.int64)
        return cls(x1, y1, x2, y2, id_col)


class NumpyKernel(GeometryKernel):
    """Vectorized sweep + batch int64 predicates (bit-identical)."""

    name = "numpy"

    def __init__(self, block: int = SWEEP_BLOCK):
        self.block = max(1, int(block))

    # ------------------------------------------------------------------
    def neighbor_pairs(self, rects: Sequence, dist: int
                       ) -> List[Tuple[int, int]]:
        ii, jj, _sep, _xg, _yg = self._pairs(RectArray.from_rects(rects),
                                             dist)
        return list(zip(ii.tolist(), jj.tolist()))

    def overlap_rows(self, rects: Sequence, dist: int,
                     groups: Optional[Sequence[int]] = None
                     ) -> List[PairRow]:
        ra = RectArray.from_rects(rects, ids=groups)
        ii, jj, sep, xg, yg = self._pairs(ra, dist, exempt_same_id=True)
        return list(zip(ii.tolist(), jj.tolist(), sep.tolist(),
                        xg.tolist(), yg.tolist()))

    def region_centers2(self, rects: Sequence,
                        pairs: Sequence[Tuple[int, int]]
                        ) -> List[Tuple[int, int]]:
        if not pairs:
            return []
        ra = RectArray.from_rects(rects)
        pq = np.asarray(pairs, dtype=np.int64)
        cx2, cy2 = _region_centers2(ra, pq[:, 0], pq[:, 1])
        return list(zip(cx2.tolist(), cy2.tolist()))

    # ------------------------------------------------------------------
    def _pairs(self, ra: RectArray, dist: int,
               exempt_same_id: bool = False):
        """Sorted, measured ``i < j`` pairs with separation < ``dist``.

        Returns five parallel int64 arrays: i, j, separation_sq,
        x_gap, y_gap.
        """
        empty = np.empty(0, dtype=np.int64)
        n = ra.n
        if n < 2 or dist <= 0:
            # dist == 0 can never satisfy the strict test; negative
            # interaction distances are not meaningful for a sweep.
            return empty, empty, empty.copy(), empty.copy(), empty.copy()

        order = np.argsort(ra.x1, kind="stable")
        sx1 = ra.x1[order]
        sy1 = ra.y1[order]
        sx2 = ra.x2[order]
        sy2 = ra.y2[order]
        sid = ra.ids[order] if (exempt_same_id and ra.ids is not None) \
            else None

        # Window bound: any qualifying pair (p, q>p) has
        # x1[q] - x2[p] <= x_gap < dist, so q < searchsorted(x1, x2[p]+dist).
        hi = np.searchsorted(sx1, sx2 + dist, side="left")
        counts = hi - np.arange(1, n + 1, dtype=np.int64)
        np.maximum(counts, 0, out=counts)
        cum = np.empty(n + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(counts, out=cum[1:])
        if cum[-1] == 0:
            return empty, empty, empty.copy(), empty.copy(), empty.copy()

        dist_sq = dist * dist
        out_i: List[np.ndarray] = []
        out_j: List[np.ndarray] = []
        out_sep: List[np.ndarray] = []
        out_xg: List[np.ndarray] = []
        out_yg: List[np.ndarray] = []

        p0 = 0
        while p0 < n:
            p1 = int(np.searchsorted(cum, cum[p0] + self.block,
                                     side="left"))
            p1 = min(max(p1, p0 + 1), n)
            blk = counts[p0:p1]
            total = int(cum[p1] - cum[p0])
            if total == 0:
                p0 = p1
                continue
            p_idx = np.repeat(np.arange(p0, p1, dtype=np.int64), blk)
            offs = np.arange(total, dtype=np.int64) \
                - np.repeat(cum[p0:p1] - cum[p0], blk)
            q_idx = p_idx + 1 + offs

            # x1[q] >= x1[p] after the sort, so the interval-gap
            # formula collapses to x1[q] - min(x2).
            xg = sx1[q_idx] - np.minimum(sx2[p_idx], sx2[q_idx])
            yg = batch_gap(sy1[p_idx], sy2[p_idx],
                           sy1[q_idx], sy2[q_idx])
            sep = batch_separation_sq(xg, yg)
            mask = sep < dist_sq
            if sid is not None:
                mask &= sid[p_idx] != sid[q_idx]
            if mask.any():
                out_i.append(order[p_idx[mask]])
                out_j.append(order[q_idx[mask]])
                out_sep.append(sep[mask])
                out_xg.append(xg[mask])
                out_yg.append(yg[mask])
            p0 = p1

        if not out_i:
            return empty, empty, empty.copy(), empty.copy(), empty.copy()
        oi = np.concatenate(out_i)
        oj = np.concatenate(out_j)
        sep = np.concatenate(out_sep)
        xg = np.concatenate(out_xg)
        yg = np.concatenate(out_yg)
        ii = np.minimum(oi, oj)
        jj = np.maximum(oi, oj)
        perm = np.lexsort((jj, ii))
        return ii[perm], jj[perm], sep[perm], xg[perm], yg[perm]


def _region_centers2(ra: RectArray, pi: np.ndarray, pj: np.ndarray):
    """Vectorized ``shifters.overlap.region_center2`` over index pairs.

    The scalar function returns the doubled centre of the positive-area
    intersection, else of the between-region (one axis overlapping with
    positive length, the other strictly disjoint), else of the hull.
    In the first two cases the doubled centre is exactly
    ``(ix1+ix2, iy1+iy2)`` of the *closed* projection intersections, so
    one mask covers both; everything else (corner cases and point/edge
    touches) takes the hull.
    """
    ax1, ay1 = ra.x1[pi], ra.y1[pi]
    ax2, ay2 = ra.x2[pi], ra.y2[pi]
    bx1, by1 = ra.x1[pj], ra.y1[pj]
    bx2, by2 = ra.x2[pj], ra.y2[pj]

    ix1 = np.maximum(ax1, bx1)
    ix2 = np.minimum(ax2, bx2)
    iy1 = np.maximum(ay1, by1)
    iy2 = np.minimum(ay2, by2)

    x_pos = ix1 < ix2   # positive-length x overlap
    y_pos = iy1 < iy2
    mid = (x_pos & y_pos) | (x_pos & (iy1 > iy2)) | (y_pos & (ix1 > ix2))

    hx = np.minimum(ax1, bx1) + np.maximum(ax2, bx2)
    hy = np.minimum(ay1, by1) + np.maximum(ay2, by2)
    cx2 = np.where(mid, ix1 + ix2, hx)
    cy2 = np.where(mid, iy1 + iy2, hy)
    return cx2, cy2
