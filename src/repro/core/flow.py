"""The end-to-end AAPSM flow: detect, correct, re-verify, assign.

This is the paper's proposed flow as a single call::

    result = run_aapsm_flow(layout, Technology.node_90nm())
    result.success          # phase-assignable after correction?
    result.assignment       # 0/180 phases per shifter
    result.correction.area_increase_pct

The flow *proves* its own result: after applying the end-to-end spaces
it regenerates shifters on the modified layout, re-runs detection, and
only reports success when the corrected layout is genuinely
phase-assignable and the geometric verifier accepts the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..conflict import (
    DetectionReport,
    PCG,
    build_layout_conflict_graph,
    detect_conflicts,
)
from ..correction import CorrectionReport, correct_layout
from ..graph import METHOD_GADGET
from ..layout import Layout, Technology
from ..phase import PhaseAssignment, assign_phases, verify_assignment


@dataclass
class FlowResult:
    """Everything a run of the full flow produced."""

    layout: Layout
    corrected_layout: Layout
    detection: DetectionReport
    correction: CorrectionReport
    post_detection: DetectionReport
    assignment: Optional[PhaseAssignment]
    success: bool

    def summary(self) -> str:
        """One-paragraph human-readable outcome."""
        lines = [
            f"design {self.layout.name}: {self.detection.num_features} "
            f"polygons, {self.detection.num_shifters} shifters",
            f"detected {self.detection.num_conflicts} conflicts "
            f"({self.detection.num_conflict_edges} deleted edges, "
            f"|P|={self.detection.crossings_removed})",
            f"correction: {self.correction.num_cuts} end-to-end spaces, "
            f"area +{self.correction.area_increase_pct:.2f}%",
            f"post-correction phase-assignable: "
            f"{self.post_detection.phase_assignable}",
            f"success: {self.success}",
        ]
        if self.correction.uncorrectable:
            lines.append(
                f"uncorrectable by spacing: "
                f"{len(self.correction.uncorrectable)} conflicts "
                "(mask splitting / widening territory)")
        return "\n".join(lines)


def run_aapsm_flow(layout: Layout, tech: Technology,
                   kind: str = PCG,
                   method: str = METHOD_GADGET,
                   cover: str = "auto",
                   tiles=None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None) -> FlowResult:
    """Detect conflicts, insert spaces, verify, and assign phases.

    With ``tiles`` set, both detection passes run through the tiled
    chip orchestrator (:func:`repro.chip.run_chip_flow`) — partitioned,
    optionally multi-process (``jobs``), with per-tile result caching
    (``cache_dir``).  The stitched reports are drop-in equivalents of
    the monolithic ones, so correction and assignment are unchanged.
    """
    shared_cache = None
    if tiles is not None:
        # One cache for both detection passes: tiles the correction
        # leaves untouched are hits in the post-correction run.
        from ..chip import TileCache

        shared_cache = TileCache(cache_dir)

    def detect(target: Layout):
        if tiles is None:
            return detect_conflicts(target, tech, kind=kind, method=method)
        from ..chip import run_chip_flow

        return run_chip_flow(target, tech, tiles=tiles, jobs=jobs,
                             cache=shared_cache, kind=kind,
                             method=method).detection

    detection = detect(layout)

    conflicts = [c.key for c in detection.conflicts]
    corrected, correction = correct_layout(layout, tech, conflicts,
                                           cover=cover)

    post = detect(corrected)

    assignment: Optional[PhaseAssignment] = None
    success = False
    if post.phase_assignable:
        cg, shifters, _pairs = build_layout_conflict_graph(corrected, tech,
                                                           kind)
        assignment = assign_phases(cg)
        if assignment is not None:
            problems = verify_assignment(shifters, assignment, tech)
            success = not problems

    return FlowResult(
        layout=layout,
        corrected_layout=corrected,
        detection=detection,
        correction=correction,
        post_detection=post,
        assignment=assignment,
        success=success,
    )
