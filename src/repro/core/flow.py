"""The end-to-end AAPSM flow: detect, correct, re-verify, assign.

This is the paper's proposed flow as a single call::

    result = run_aapsm_flow(layout, Technology.node_90nm())
    result.success          # phase-assignable after correction?
    result.assignment       # 0/180 phases per shifter
    result.correction.area_increase_pct

The flow *proves* its own result: after applying the end-to-end spaces
it regenerates shifters on the modified layout, re-runs detection, and
only reports success when the corrected layout is genuinely
phase-assignable and the geometric verifier accepts the assignment.

Since the staged-pipeline refactor this module is a thin compatibility
wrapper: the work happens in :func:`repro.pipeline.run_pipeline`
(explicit stages — shifter generation, tiled detection, window-scoped
correction, re-verification, phase assignment — over shared
artifacts), and :class:`FlowResult` is a flat view over its
:class:`~repro.pipeline.PipelineResult`, which rides along in
``result.pipeline`` for stage timings and cache accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..conflict import PCG, DetectionReport
from ..correction import CorrectionReport
from ..graph import METHOD_GADGET
from ..layout import Layout, Technology
from ..phase import PhaseAssignment
from ..pipeline import PipelineConfig, PipelineResult, run_pipeline


@dataclass
class FlowResult:
    """Everything a run of the full flow produced."""

    layout: Layout
    corrected_layout: Layout
    detection: DetectionReport
    correction: CorrectionReport
    post_detection: DetectionReport
    assignment: Optional[PhaseAssignment]
    success: bool
    pipeline: Optional[PipelineResult] = None

    def summary(self) -> str:
        """One-paragraph human-readable outcome."""
        lines = [
            f"design {self.layout.name}: {self.detection.num_features} "
            f"polygons, {self.detection.num_shifters} shifters",
            f"detected {self.detection.num_conflicts} conflicts "
            f"({self.detection.num_conflict_edges} deleted edges, "
            f"|P|={self.detection.crossings_removed})",
            f"correction: {self.correction.num_cuts} end-to-end spaces "
            f"in {self.correction.num_windows} window(s), "
            f"area +{self.correction.area_increase_pct:.2f}%",
            f"post-correction phase-assignable: "
            f"{self.post_detection.phase_assignable}",
            f"success: {self.success}",
        ]
        if self.correction.uncorrectable:
            lines.append(
                f"uncorrectable by spacing: "
                f"{len(self.correction.uncorrectable)} conflicts "
                "(mask splitting / widening territory)")
        if self.pipeline is not None and self.pipeline.tiled:
            hits, misses = self.pipeline.cache_counts()
            lines.append(f"tile cache: {hits} hits / {misses} misses "
                         f"across both detection passes")
        return "\n".join(lines)


def flow_result_from_pipeline(pipe: PipelineResult) -> FlowResult:
    """Flatten a staged-pipeline result into the legacy shape."""
    return FlowResult(
        layout=pipe.layout,
        corrected_layout=pipe.corrected_layout,
        detection=pipe.detection.report,
        correction=pipe.correction.report,
        post_detection=pipe.post_detection,
        assignment=pipe.assignment,
        success=pipe.success,
        pipeline=pipe,
    )


def run_aapsm_flow(layout: Layout, tech: Technology,
                   kind: str = PCG,
                   method: str = METHOD_GADGET,
                   cover: str = "auto",
                   tiles=None,
                   jobs: Optional[int] = None,
                   cache_dir: Optional[str] = None,
                   cache=None,
                   incremental: bool = False,
                   executor: Optional[str] = None,
                   kernels: Optional[str] = None,
                   matcher: Optional[str] = None) -> FlowResult:
    """Detect conflicts, insert spaces, verify, and assign phases.

    Args:
        layout: the input layout (poly layer as rectangles).
        tech: rule deck.
        kind: conflict-graph kind ("pcg", the paper's, or "fg").
        method: bipartization engine per detection pass.
        cover: set-cover solver ("auto"/"greedy"/"exact").
        tiles: tile grid spec; enables the tiled path.
        jobs: worker processes for tiled detection.
        cache_dir: directory for the persistent artifact store.
        cache: an existing store (overrides ``cache_dir``).
        incremental: run tiled (with a jobs-blind pinned auto grid)
            even when ``tiles`` is None.
        executor: executor backend name ("serial"/"process"/"thread"
            or anything registered); None keeps the jobs heuristic.
        kernels: geometry-kernel backend name ("scalar"/"numpy" or
            anything registered); None inherits the ambient default.
            Bit-identical output either way — the backend trades
            wall-clock only.
        matcher: matching backend name ("blossom"/"networkx" or
            anything registered); None inherits the ambient default
            (``REPRO_MATCHER``, else "blossom").  Every exact backend
            yields the same reports.

    With ``tiles`` set (or ``incremental=True``), shifter generation
    and both detection passes run tile-scoped through the shared
    artifact store (``cache_dir``/``cache``; kinds ``frontend`` and
    ``tile``, plus ``window``/``coloring``/``verify`` downstream):
    tiles the correction leaves untouched are hits in the
    post-correction pass, and a persistent store makes a re-run after
    an edit recompute only dirty tiles — shifters included (see
    :mod:`repro.pipeline.eco`).

    Determinism guarantee: the domain outcome (conflicts, cuts,
    phases, area) is identical across every configuration of
    ``tiles``/``jobs``/``cache`` — the knobs trade wall-clock and
    reuse, never the answer.
    """
    if incremental and tiles is None:
        # Pin the auto grid jobs-blind, exactly as the ECO scheduler
        # does (resolve_eco_tiles): a warm run and a later `repro eco`
        # against the same cache must derive the same partition
        # regardless of worker count or machine.
        from ..chip.partition import auto_tile_grid

        tiles = auto_tile_grid(layout)
    config = PipelineConfig(kind=kind, method=method, cover=cover,
                            tiles=tiles, jobs=jobs, cache_dir=cache_dir,
                            tiled=True if incremental else None,
                            executor=executor, kernels=kernels,
                            matcher=matcher)
    return flow_result_from_pipeline(
        run_pipeline(layout, tech, config, cache=cache))
