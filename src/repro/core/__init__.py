"""End-to-end AAPSM flow (the paper's proposed system, S13)."""

from .flow import FlowResult, flow_result_from_pipeline, run_aapsm_flow
from .report import (
    chip_report_dict,
    eco_result_dict,
    flow_result_dict,
    load_flow_report,
    pipeline_dict,
    save_flow_report,
)

__all__ = [
    "FlowResult",
    "run_aapsm_flow",
    "flow_result_from_pipeline",
    "flow_result_dict",
    "chip_report_dict",
    "eco_result_dict",
    "pipeline_dict",
    "save_flow_report",
    "load_flow_report",
]
