"""End-to-end AAPSM flow (the paper's proposed system, S13)."""

from .flow import FlowResult, run_aapsm_flow
from .report import (
    flow_result_dict,
    load_flow_report,
    save_flow_report,
)

__all__ = [
    "FlowResult",
    "run_aapsm_flow",
    "flow_result_dict",
    "save_flow_report",
    "load_flow_report",
]
