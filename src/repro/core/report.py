"""Machine-readable flow reports.

Turns a :class:`repro.core.FlowResult` into a plain JSON-serializable
dict (and back onto disk), so downstream tooling — regression tracking,
dashboards, the paper-table generators — can consume flow outcomes
without touching the object model.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .flow import FlowResult


def detection_dict(report) -> Dict[str, Any]:
    return {
        "layout": report.layout_name,
        "graph_kind": report.graph_kind,
        "num_features": report.num_features,
        "num_critical": report.num_critical,
        "num_shifters": report.num_shifters,
        "num_overlap_pairs": report.num_overlap_pairs,
        "graph_nodes": report.graph_nodes,
        "graph_edges": report.graph_edges,
        "crossings_removed": report.crossings_removed,
        "step2_edges": report.step2_edges,
        "step2_weight": report.step2_weight,
        "step3_edges": report.step3_edges,
        "phase_assignable": report.phase_assignable,
        "conflicts": [[c.a, c.b] for c in report.conflicts],
        "tshape_conflicts": [[c.a, c.b] for c in report.tshape_conflicts],
        "tshape_features": list(report.tshape_features),
        "uncorrectable_features": list(report.uncorrectable_features),
        "detect_seconds": report.detect_seconds,
    }


def correction_dict(report) -> Dict[str, Any]:
    return {
        "num_conflicts": report.num_conflicts,
        "corrected": [list(k) for k in report.corrected],
        "uncorrectable": [list(k) for k in report.uncorrectable],
        "cuts": [{"axis": c.axis, "position": c.position,
                  "width": c.width} for c in report.cuts],
        "num_grid_candidates": report.num_grid_candidates,
        "max_cover": report.max_cover,
        "cover_method": report.cover_method,
        "area_before": report.area_before,
        "area_after": report.area_after,
        "area_increase_pct": report.area_increase_pct,
        "stretched_critical": list(report.stretched_critical),
    }


def flow_result_dict(result: FlowResult) -> Dict[str, Any]:
    """The whole flow outcome as one JSON-serializable dict."""
    out: Dict[str, Any] = {
        "design": result.layout.name,
        "success": result.success,
        "detection": detection_dict(result.detection),
        "correction": correction_dict(result.correction),
        "post_detection": detection_dict(result.post_detection),
    }
    if result.assignment is not None:
        out["phases"] = {str(k): v
                         for k, v in sorted(result.assignment.phases.items())}
    return out


def save_flow_report(result: FlowResult, path: str) -> None:
    """Write the flow outcome as pretty-printed JSON."""
    with open(path, "w") as f:
        json.dump(flow_result_dict(result), f, indent=2, sort_keys=True)
        f.write("\n")


def load_flow_report(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
