"""Machine-readable flow reports.

Turns a :class:`repro.core.FlowResult` into a plain JSON-serializable
dict (and back onto disk), so downstream tooling — regression tracking,
dashboards, CI assertions, the paper-table generators — can consume
flow outcomes without touching the object model.

Every builder takes ``timings=False`` to omit wall-clock fields: a
seeded design then serializes byte-identically across runs, which the
determinism regression suite asserts.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .flow import FlowResult


def detection_dict(report, timings: bool = True) -> Dict[str, Any]:
    out = {
        "layout": report.layout_name,
        "graph_kind": report.graph_kind,
        "num_features": report.num_features,
        "num_critical": report.num_critical,
        "num_shifters": report.num_shifters,
        "num_overlap_pairs": report.num_overlap_pairs,
        "graph_nodes": report.graph_nodes,
        "graph_edges": report.graph_edges,
        "crossings_removed": report.crossings_removed,
        "step2_edges": report.step2_edges,
        "step2_weight": report.step2_weight,
        "step3_edges": report.step3_edges,
        "phase_assignable": report.phase_assignable,
        "conflicts": [[c.a, c.b] for c in report.conflicts],
        "tshape_conflicts": [[c.a, c.b] for c in report.tshape_conflicts],
        "tshape_features": list(report.tshape_features),
        "uncorrectable_features": list(report.uncorrectable_features),
    }
    if timings:
        out["detect_seconds"] = report.detect_seconds
    return out


def correction_dict(report, timings: bool = True) -> Dict[str, Any]:
    del timings  # no wall-clock fields yet; kept for signature symmetry
    return {
        "num_conflicts": report.num_conflicts,
        "corrected": [list(k) for k in report.corrected],
        "uncorrectable": [list(k) for k in report.uncorrectable],
        "cuts": [{"axis": c.axis, "position": c.position,
                  "width": c.width} for c in report.cuts],
        "num_grid_candidates": report.num_grid_candidates,
        "max_cover": report.max_cover,
        "cover_method": report.cover_method,
        "num_windows": report.num_windows,
        "largest_window": report.largest_window,
        "windows": [{"conflicts": [list(k) for k in w.conflicts],
                     "num_lines": w.num_lines}
                    for w in report.windows],
        "area_before": report.area_before,
        "area_after": report.area_after,
        "area_increase_pct": report.area_increase_pct,
        "stretched_critical": list(report.stretched_critical),
    }


def chip_report_dict(chip, timings: bool = True) -> Dict[str, Any]:
    """A :class:`repro.chip.ChipReport` as a JSON-serializable dict."""
    out: Dict[str, Any] = {
        "grid": {"nx": chip.nx, "ny": chip.ny, "halo": chip.halo},
        "jobs": chip.jobs,
        "executor": chip.executor,
        "num_tiles": chip.num_tiles,
        "clusters": chip.clusters,
        "boundary_duplicates_dropped": chip.boundary_duplicates_dropped,
        "unmapped_conflicts": chip.unmapped_conflicts,
        "cache": cache_dict(chip.cache_hits, chip.cache_misses),
        "stitch_cache": cache_dict(chip.stitch_hits, chip.stitch_misses),
        "detection": detection_dict(chip.detection, timings=timings),
    }
    tiles = [{"ix": s.ix, "iy": s.iy, "polygons": s.polygons,
              "conflicts_reported": s.conflicts_reported,
              "from_cache": s.from_cache}
             for s in chip.tile_stats]
    if timings:
        out["wall_seconds"] = chip.wall_seconds
        out["tile_seconds"] = chip.tile_seconds
        for stat, row in zip(chip.tile_stats, tiles):
            row["seconds"] = stat.seconds
    out["tiles"] = tiles
    return out


def cache_dict(hits: int, misses: int) -> Dict[str, Any]:
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "requests": total,
        "hit_rate": hits / total if total else 0.0,
    }


def pipeline_dict(pipe, timings: bool = True) -> Dict[str, Any]:
    """Stage-level accounting of a :class:`~repro.pipeline.PipelineResult`.

    ``cache``/``detect_cache``/``verify_cache`` keep their historical
    tile-pass meaning; ``correct_cache`` and ``phase`` carry the
    per-stage deltas of the unified artifact store (window solutions,
    component colorings, verifier verdicts), so a warm ECO's "only
    dirty work recomputed" property is assertable straight off the
    JSON report.  ``frontend_cache`` is the ``frontend`` kind's delta
    over the whole run (``front_cache`` / ``verify_front_cache`` split
    it per front-end pass): on a warm run ``front_cache.misses`` is
    exactly the dirty-tile count — zero clean-tile shifter
    regeneration.  ``stitch_cache`` is likewise the ``stitch`` kind's
    whole-run delta (``detect_stitch_cache`` / ``verify_stitch_cache``
    per detection pass): on a warm run over a conflict-neutral edit
    ``detect_stitch_cache.misses`` is exactly the dirty-cluster count
    — zero clean-cluster re-arbitration (an edit that reshapes which
    tiles contribute views can add conservative misses on top).
    """
    hits, misses = pipe.cache_counts()
    fe_hits, fe_misses = pipe.frontend_cache_counts()
    st_hits, st_misses = pipe.stitch_cache_counts()
    out: Dict[str, Any] = {
        "tiled": pipe.tiled,
        "front_reused_for_verify": pipe.verification.front_reused,
        "cache": cache_dict(hits, misses),
        "frontend_cache": cache_dict(fe_hits, fe_misses),
        "front_cache": cache_dict(pipe.front.cache_hits,
                                  pipe.front.cache_misses),
        "verify_front_cache": cache_dict(
            pipe.verification.front.cache_hits,
            pipe.verification.front.cache_misses),
        "detect_cache": cache_dict(pipe.detection.cache_hits,
                                   pipe.detection.cache_misses),
        "verify_cache": cache_dict(pipe.verification.cache_hits,
                                   pipe.verification.cache_misses),
        "stitch_cache": cache_dict(st_hits, st_misses),
        "detect_stitch_cache": cache_dict(pipe.detection.stitch_hits,
                                          pipe.detection.stitch_misses),
        "verify_stitch_cache": cache_dict(
            pipe.verification.stitch_hits,
            pipe.verification.stitch_misses),
        "correct_cache": cache_dict(pipe.correction.cache_hits,
                                    pipe.correction.cache_misses),
        "phase": {
            "incremental": pipe.phase.incremental,
            "components": pipe.phase.components,
            "coloring": cache_dict(pipe.phase.coloring_hits,
                                   pipe.phase.recolored),
            "verify": cache_dict(pipe.phase.verify_hits,
                                 pipe.phase.verified),
        },
    }
    if pipe.tiled:
        out["executor"] = pipe.detection.chip.executor
    if timings:
        out["stage_seconds"] = pipe.stage_seconds()
        out["wall_seconds"] = pipe.wall_seconds
    return out


def eco_result_dict(eco, timings: bool = True) -> Dict[str, Any]:
    """A :class:`repro.pipeline.EcoResult` as a JSON-serializable dict."""
    from .flow import flow_result_from_pipeline

    plan = eco.plan
    out: Dict[str, Any] = {
        "plan": {
            "grid": {"nx": plan.grid.nx, "ny": plan.grid.ny,
                     "halo": plan.grid.halo},
            "num_tiles": plan.num_tiles,
            "dirty": [list(t) for t in plan.dirty],
            "num_dirty": plan.num_dirty,
            "num_clean": plan.num_clean,
            "bbox_changed": plan.bbox_changed,
            "features_added": len(plan.diff.added),
            "features_removed": len(plan.diff.removed),
            # Front-end dirtiness coincides with tile dirtiness by
            # construction (shared geometric key inputs); spelled out
            # so warm-path assertions read straight off the JSON.
            "frontend": {"num_dirty": plan.num_dirty,
                         "num_clean": plan.num_clean},
        },
        "flow": flow_result_dict(flow_result_from_pipeline(eco.result),
                                 timings=timings),
    }
    if plan.stitch_dirty is not None:
        # The dirty-cluster split (clusters touching a dirty tile must
        # re-arbitrate; the rest replay when the edit preserved their
        # contributing views, as the canonical conflict-neutral edit
        # does) — populated from the warm run's own chip report, so CI
        # can assert zero clean-cluster re-arbitrations off the JSON.
        out["plan"]["stitch"] = {"num_dirty": plan.num_stitch_dirty,
                                 "num_clean": plan.num_stitch_clean}
    if timings:
        out["eco_seconds"] = eco.eco_seconds
        if eco.base_seconds:
            # Only meaningful when this invocation paid the cold base
            # run; with a pre-warmed cache there is no baseline.
            out["base_seconds"] = eco.base_seconds
            out["speedup"] = eco.speedup
    return out


def flow_result_dict(result: FlowResult,
                     timings: bool = True) -> Dict[str, Any]:
    """The whole flow outcome as one JSON-serializable dict."""
    out: Dict[str, Any] = {
        "design": result.layout.name,
        "success": result.success,
        "detection": detection_dict(result.detection, timings=timings),
        "correction": correction_dict(result.correction, timings=timings),
        "post_detection": detection_dict(result.post_detection,
                                         timings=timings),
    }
    if result.assignment is not None:
        out["phases"] = {str(k): v
                         for k, v in sorted(result.assignment.phases.items())}
    if result.pipeline is not None:
        out["pipeline"] = pipeline_dict(result.pipeline, timings=timings)
    return out


def save_flow_report(result: FlowResult, path: str,
                     timings: bool = True) -> None:
    """Write the flow outcome as pretty-printed JSON."""
    with open(path, "w") as f:
        json.dump(flow_result_dict(result, timings=timings), f,
                  indent=2, sort_keys=True)
        f.write("\n")


def load_flow_report(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
