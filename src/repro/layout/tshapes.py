"""T-shape and line-end interaction detection.

The paper's §4 scopes its corrector: "AAPSM conflicts caused by
T-shapes are not handled.  These can be corrected by feature widening
or mask splitting"; and "conflicts caused by local line-end conflicts
... can be efficiently detected and corrected using additional DRC
checks during layout generation".  This module supplies those checks so
the flow can (a) exclude T-shape-adjacent constraints from the spacing
corrector and (b) report line-end pairs for the layout generator's DRC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..geometry import Rect, neighbor_pairs
from .layout import Layout
from .technology import Technology


@dataclass(frozen=True)
class TShape:
    """A perpendicular abutment between two features.

    ``bar`` is the feature whose side the ``stem`` feature's end lands
    on.  A shifter flanking the stem collides with the bar itself, so
    no amount of spacing between *shifters* fixes the interaction —
    exactly the case the paper routes to widening or mask splitting.
    """

    stem: int
    bar: int

    @property
    def key(self) -> Tuple[int, int]:
        return (self.stem, self.bar)


def _is_tshape(stem: Rect, bar: Rect) -> bool:
    """Does ``stem`` end on (touch or overlap) a long side of ``bar``?"""
    if not stem.intersects(bar):
        return False
    if stem.is_vertical == bar.is_vertical:
        return False  # parallel abutment is a butt joint, not a T
    if stem.is_vertical:
        # Stem runs vertically; its end must meet bar's horizontal run.
        return bar.xspan.strictly_overlaps(stem.xspan)
    return bar.yspan.strictly_overlaps(stem.yspan)


def find_tshapes(layout: Layout) -> List[TShape]:
    """All perpendicular abutments in a layout, both orientations."""
    feats = layout.features
    out: List[TShape] = []
    for i, j in neighbor_pairs(list(feats), 1):
        for stem, bar in ((i, j), (j, i)):
            if _is_tshape(feats[stem], feats[bar]):
                out.append(TShape(stem=stem, bar=bar))
    return sorted(out, key=lambda t: t.key)


def tshape_feature_indices(layout: Layout) -> Set[int]:
    """Features participating in any T-shape."""
    out: Set[int] = set()
    for t in find_tshapes(layout):
        out.add(t.stem)
        out.add(t.bar)
    return out


@dataclass(frozen=True)
class LineEndPair:
    """Two collinear feature ends facing each other below the rule.

    The paper: line-end conflicts "can be efficiently detected and
    corrected using additional DRC checks during layout generation" —
    this is that check.
    """

    a: int
    b: int
    gap: int


def find_line_end_pairs(layout: Layout, tech: Technology,
                        min_gap: int = 0) -> List[LineEndPair]:
    """Facing end-to-end feature pairs with gap below the threshold.

    ``min_gap`` defaults to the distance at which the end shifters of
    the two features would interact (shifter extensions face each
    other): 2 * extension + shifter spacing.
    """
    if min_gap <= 0:
        min_gap = 2 * tech.shifter_extension + tech.shifter_spacing
    feats = layout.features
    out: List[LineEndPair] = []
    for i, j in neighbor_pairs(list(feats), min_gap):
        a, b = feats[i], feats[j]
        if a.is_vertical != b.is_vertical:
            continue
        if a.is_vertical:
            aligned = a.xspan.strictly_overlaps(b.xspan)
            gap = a.y_gap(b)
        else:
            aligned = a.yspan.strictly_overlaps(b.yspan)
            gap = a.x_gap(b)
        if aligned and 0 <= gap < min_gap:
            out.append(LineEndPair(a=i, b=j, gap=gap))
    return sorted(out, key=lambda p: (p.a, p.b))
