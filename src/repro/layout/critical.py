"""Critical-feature extraction.

A feature is *critical* when its drawn width (minimum rectangle
dimension) is below the technology's critical-width threshold; critical
features must be flanked by opposite-phase shifters.  The paper's earlier
work assumed only minimum-width features are critical; this paper relaxes
that, so the extractor reports every sub-threshold feature regardless of
how its width compares to the minimum rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..geometry import Rect
from .layout import Layout
from .technology import Technology


@dataclass(frozen=True)
class CriticalFeature:
    """A poly feature that requires phase shifting.

    Attributes:
        index: index of the rectangle in ``layout.features``.
        rect: the feature geometry.
        vertical: True when the feature runs vertically, i.e. its
            critical dimension is the x-extent and shifters go to its
            left and right.
    """

    index: int
    rect: Rect
    vertical: bool

    @property
    def drawn_width(self) -> int:
        return self.rect.min_dimension

    @property
    def drawn_length(self) -> int:
        return self.rect.max_dimension


def extract_critical_features(layout: Layout,
                              tech: Technology) -> List[CriticalFeature]:
    """All critical features of a layout, in feature-index order.

    A square sub-threshold feature (width == height) is treated as
    vertical; the tie is irrelevant to assignability but must be
    deterministic so reruns produce identical conflict graphs.
    """
    out: List[CriticalFeature] = []
    for index, rect in enumerate(layout.features):
        if tech.is_critical_width(rect.min_dimension):
            out.append(CriticalFeature(
                index=index,
                rect=rect,
                vertical=rect.height >= rect.width,
            ))
    return out


def critical_fraction(layout: Layout, tech: Technology) -> float:
    """Share of features that are critical (workload characterisation)."""
    if not layout.features:
        return 0.0
    return len(extract_critical_features(layout, tech)) / len(layout.features)
