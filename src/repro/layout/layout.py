"""Layout database.

A :class:`Layout` is a named bag of rectangles per layer.  The AAPSM flow
only reasons about the polysilicon layer (``Layout.features``), but the
database keeps a generic layer table so GDSII round-trips and multi-layer
extensions have somewhere to live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..geometry import Rect, bounding_box, union_area

POLY_LAYER = 1
SHIFTER_0_LAYER = 20
SHIFTER_180_LAYER = 21


@dataclass
class Layout:
    """A flat rectangle-based layout.

    The paper assumes "the layout is composed of a set of non-overlapping
    rectangles" (§3.1.1); :meth:`validate` checks that assumption for the
    poly layer.
    """

    name: str = "layout"
    layers: Dict[int, List[Rect]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Poly-layer conveniences
    # ------------------------------------------------------------------
    @property
    def features(self) -> List[Rect]:
        """Rectangles on the polysilicon layer."""
        return self.layers.setdefault(POLY_LAYER, [])

    def add_feature(self, rect: Rect) -> int:
        """Append a poly feature; returns its index."""
        self.features.append(rect)
        return len(self.features) - 1

    def add_features(self, rects: Iterable[Rect]) -> None:
        self.features.extend(rects)

    def add_shape(self, layer: int, rect: Rect) -> None:
        self.layers.setdefault(layer, []).append(rect)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def num_polygons(self) -> int:
        return len(self.features)

    def bbox(self) -> Optional[Rect]:
        return bounding_box(self.features)

    def die_area(self) -> int:
        """Bounding-box area in nm^2 (the paper's Table 2 "Area")."""
        box = self.bbox()
        return box.area if box is not None else 0

    def die_area_um2(self) -> float:
        return self.die_area() / 1.0e6

    def drawn_area(self) -> int:
        """Union area of the poly shapes (for density statistics)."""
        return union_area(self.features)

    def density(self) -> float:
        die = self.die_area()
        return self.drawn_area() / die if die else 0.0

    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Check the rectangle-layout assumption; returns problem strings."""
        problems: List[str] = []
        feats = self.features
        # O(n log n) sweep over x-sorted rects to find strict overlaps.
        order = sorted(range(len(feats)), key=lambda i: feats[i].x1)
        active: List[int] = []
        for i in order:
            r = feats[i]
            active = [j for j in active if feats[j].x2 > r.x1]
            for j in active:
                if r.strictly_intersects(feats[j]):
                    problems.append(
                        f"features {j} and {i} overlap: {feats[j]} {r}")
            active.append(i)
        return problems

    def copy(self, name: Optional[str] = None) -> "Layout":
        out = Layout(name=name or self.name)
        for layer, rects in self.layers.items():
            out.layers[layer] = list(rects)
        return out


def layout_from_rects(rects: Sequence[Rect], name: str = "layout") -> Layout:
    """Build a layout whose poly layer is the given rectangles."""
    out = Layout(name=name)
    out.add_features(rects)
    return out
