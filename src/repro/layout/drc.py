"""Minimal design-rule checker.

Two rule classes matter to this reproduction:

* poly width/spacing — used to validate generated workloads and, more
  importantly, to demonstrate the paper's claim that *end-to-end* space
  insertion cannot introduce spacing violations (§3.2);
* shifter spacing — the Condition-2 rule, checked against a concrete
  phase assignment by :mod:`repro.phase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..geometry import Rect, neighbor_pairs
from .layout import Layout
from .technology import Technology


@dataclass(frozen=True)
class Violation:
    """A single DRC violation."""

    kind: str          # "width" | "spacing"
    indices: tuple     # offending feature indices (1 for width, 2 for spacing)
    value: int         # measured width or squared distance
    limit: int         # rule value

    def __str__(self) -> str:
        which = ",".join(str(i) for i in self.indices)
        return f"{self.kind}[{which}]: {self.value} < {self.limit}"


def check_width(features: Sequence[Rect], min_width: int) -> List[Violation]:
    """Every feature must be at least ``min_width`` wide."""
    return [
        Violation("width", (i,), r.min_dimension, min_width)
        for i, r in enumerate(features)
        if r.min_dimension < min_width
    ]


def check_spacing(features: Sequence[Rect], min_space: int) -> List[Violation]:
    """No two features may be closer than ``min_space`` (touching counts)."""
    out: List[Violation] = []
    for i, j in neighbor_pairs(list(features), min_space):
        sep_sq = features[i].separation_sq(features[j])
        out.append(Violation("spacing", (i, j), sep_sq, min_space * min_space))
    return out


def check_layout(layout: Layout, tech: Technology) -> List[Violation]:
    """Full poly-layer DRC for a layout."""
    feats = layout.features
    return (check_width(feats, tech.min_feature_width) +
            check_spacing(feats, tech.min_feature_spacing))


def is_drc_clean(layout: Layout, tech: Technology) -> bool:
    return not check_layout(layout, tech)
