"""Technology rule deck for bright-field AAPSM.

The paper evaluates 90 nm designs and "assumes typical values of threshold
width for critical features, shifter dimensions and shifter spacing"
without publishing them; :func:`Technology.node_90nm` encodes a consistent
set of typical values (integer nanometres).  All algorithms take the rule
deck explicitly so the whole flow can be re-run at other nodes.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, replace
from functools import lru_cache


@dataclass(frozen=True)
class Technology:
    """AAPSM-relevant design rules, in integer nanometres.

    Attributes:
        name: human-readable deck name.
        min_feature_width: minimum drawn width of a poly feature.
        min_feature_spacing: minimum space between two poly features.
        critical_width: features with drawn width strictly below this
            threshold are *critical* and must be flanked by
            opposite-phase shifters (paper §1, footnote 1).
        shifter_width: drawn width of a generated phase shifter.
        shifter_spacing: minimum space between two shifters that are
            allowed to carry different phases; shifter pairs closer than
            this are "overlapping" and must share a phase (Condition 2).
        shifter_extension: how far a shifter extends past the line end
            of the feature it guards.
    """

    name: str
    min_feature_width: int
    min_feature_spacing: int
    critical_width: int
    shifter_width: int
    shifter_spacing: int
    shifter_extension: int

    def __post_init__(self) -> None:
        if self.min_feature_width <= 0:
            raise ValueError("min_feature_width must be positive")
        if self.critical_width < self.min_feature_width:
            raise ValueError(
                "critical_width below min_feature_width would make no "
                "feature critical")
        if self.shifter_width <= 0:
            raise ValueError("shifter_width must be positive")
        if self.shifter_spacing <= 0:
            raise ValueError("shifter_spacing must be positive")
        if self.shifter_extension < 0:
            raise ValueError("shifter_extension must be >= 0")

    # ------------------------------------------------------------------
    @staticmethod
    def node_90nm() -> "Technology":
        """Typical 90 nm poly rules (the paper's experimental node)."""
        return Technology(
            name="90nm-poly",
            min_feature_width=90,
            min_feature_spacing=140,
            critical_width=150,
            shifter_width=100,
            shifter_spacing=120,
            shifter_extension=20,
        )

    @staticmethod
    def node_65nm() -> "Technology":
        """A tighter deck used by scaling ablations."""
        return Technology(
            name="65nm-poly",
            min_feature_width=65,
            min_feature_spacing=110,
            critical_width=120,
            shifter_width=80,
            shifter_spacing=100,
            shifter_extension=15,
        )

    def is_critical_width(self, width: int) -> bool:
        """Does a drawn width require phase shifting?"""
        return width < self.critical_width

    def with_(self, **changes) -> "Technology":
        """Functional update helper (``tech.with_(shifter_spacing=200)``)."""
        return replace(self, **changes)


@lru_cache(maxsize=None)
def tech_fingerprint(tech: Technology) -> bytes:
    """The rule deck's cache-key bytes: ``repr(astuple(tech))`` encoded.

    Every content-addressed key (tile results, tile front ends,
    component verdicts) hashes the deck in exactly this byte form, so
    the encoding must never change — existing on-disk caches would
    silently go cold.  Memoized because ``dataclasses.astuple`` deep-
    copies every field: computing this per component made it the assign
    stage's hottest line on chip-scale runs, while in practice a run
    touches one or two distinct (hashable, frozen) decks.
    """
    return repr(astuple(tech)).encode()
