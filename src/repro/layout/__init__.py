"""Layout database, rules, DRC and workload generation (substrate S3/S12)."""

from .critical import CriticalFeature, critical_fraction, extract_critical_features
from .drc import Violation, check_layout, check_spacing, check_width, is_drc_clean
from .generator import (
    GeneratorParams,
    conflict_grid_layout,
    figure1_layout,
    grating_layout,
    odd_cycle_chain,
    random_rect_layout,
    standard_cell_layout,
)
from .layout import (
    POLY_LAYER,
    SHIFTER_0_LAYER,
    SHIFTER_180_LAYER,
    Layout,
    layout_from_rects,
)
from .technology import Technology, tech_fingerprint
from .tshapes import (
    LineEndPair,
    TShape,
    find_line_end_pairs,
    find_tshapes,
    tshape_feature_indices,
)

__all__ = [
    "Layout",
    "layout_from_rects",
    "POLY_LAYER",
    "SHIFTER_0_LAYER",
    "SHIFTER_180_LAYER",
    "Technology",
    "tech_fingerprint",
    "CriticalFeature",
    "extract_critical_features",
    "critical_fraction",
    "Violation",
    "check_layout",
    "check_width",
    "check_spacing",
    "is_drc_clean",
    "TShape",
    "find_tshapes",
    "tshape_feature_indices",
    "LineEndPair",
    "find_line_end_pairs",
    "GeneratorParams",
    "standard_cell_layout",
    "grating_layout",
    "figure1_layout",
    "odd_cycle_chain",
    "conflict_grid_layout",
    "random_rect_layout",
]
