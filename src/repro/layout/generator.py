"""Synthetic layout generators (substrate for the paper's experiments).

The paper evaluates on proprietary 90 nm industrial designs.  We cannot
redistribute those, so this module generates standard-cell-like poly
layouts whose *statistics* (critical-feature fraction, shifter-overlap
density, conflict density) are tunable to land in the ranges the paper
reports.  Every generator is deterministic given a seed.

Geometry of a generated design::

    row r:   | gate | gate | gate | pad | gate | ...      (vertical poly)
             ~~~~~~~~~ wire ~~~~~~~~                       (horizontal poly)

Vertical *gates* at sub-410 nm pitch produce Condition-2 ("same phase")
chains between facing shifters.  A horizontal *wire* whose top shifter
reaches both shifters of a gate above it closes an odd cycle through that
gate's feature edge — the canonical bright-field AAPSM conflict (the
paper's Figure 1).  Wires are placed at a "safe" vertical gap by default
and at a "risky" gap with probability ``risky_wire_fraction``, which is
the knob controlling conflict density.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..geometry import Rect
from .layout import Layout
from .technology import Technology


@dataclass(frozen=True)
class GeneratorParams:
    """Tunable parameters for :func:`standard_cell_layout`.

    The defaults are calibrated for :meth:`Technology.node_90nm`; the
    derived bounds below explain the magic numbers:

    * gate gap in [160, 360]: >= 140 keeps poly spacing DRC-clean, and
      gaps < 320 put the facing shifters (2 x 100 nm wide) within the
      120 nm shifter-spacing rule, so phase chains form;
    * risky wire gap in [140, 230]: >= 140 is poly spacing, < 240 puts
      the wire's top shifter within shifter-spacing of the gate shifters
      above it;
    * safe wire gap >= 260 guarantees no wire-gate shifter interaction.
    """

    rows: int = 4
    cols: int = 10
    gate_width_choices: tuple = (90, 110, 130)
    gate_height_range: tuple = (600, 1100)
    gate_gap_range: tuple = (160, 360)
    pad_probability: float = 0.08
    pad_size: int = 220
    wire_width_choices: tuple = (90, 100)
    wires_per_row: float = 0.30        # expected wires per gate column
    risky_wire_fraction: float = 0.15
    risky_wire_gap: tuple = (150, 225)
    safe_wire_gap: tuple = (280, 420)
    wire_span_gates: tuple = (1, 3)    # how many gates a wire runs under
    row_margin: int = 700              # extra space between rows
    tshape_probability: float = 0.0    # per-row chance of a T abutment


def standard_cell_layout(params: GeneratorParams = GeneratorParams(),
                         seed: int = 0,
                         tech: Optional[Technology] = None,
                         name: str = "stdcell") -> Layout:
    """Generate a standard-cell-like poly layout.

    The result is DRC-clean by construction for the default 90 nm deck
    (verified by the test suite across seeds).
    """
    del tech  # geometry is calibrated for the 90 nm deck; kept for API symmetry
    rng = random.Random(seed)
    layout = Layout(name=name)
    row_height = params.gate_height_range[1] + params.row_margin

    for row in range(params.rows):
        base_y = row * (row_height + params.safe_wire_gap[1] + 200)
        x = 0
        gate_cells: List[Rect] = []
        for _col in range(params.cols):
            gap = rng.randint(*params.gate_gap_range)
            if rng.random() < params.pad_probability:
                # A wide, non-critical landing pad between gates.
                pad = Rect(x, base_y, x + params.pad_size,
                           base_y + params.pad_size)
                layout.add_feature(pad)
                x += params.pad_size + max(gap, 200)
                continue
            width = rng.choice(params.gate_width_choices)
            height = rng.randint(*params.gate_height_range)
            gate = Rect(x, base_y, x + width, base_y + height)
            layout.add_feature(gate)
            gate_cells.append(gate)
            x += width + gap

        _add_row_wires(layout, gate_cells, params, rng)
        # Guarded so the default (0.0) consumes no RNG draws, keeping
        # the seeded suite layouts stable across library versions.
        if (params.tshape_probability > 0 and gate_cells
                and rng.random() < params.tshape_probability):
            # A horizontal stub abutting the last gate's right side: a
            # T-shape, whose conflicts spacing cannot correct (paper
            # §4 excludes these; our flow reports them separately).
            gate = gate_cells[-1]
            y = gate.y1 + (gate.height - 90) // 2
            layout.add_feature(Rect(gate.x2, y, gate.x2 + 350, y + 90))
    return layout


def _add_row_wires(layout: Layout, gates: List[Rect],
                   params: GeneratorParams, rng: random.Random) -> None:
    """Place horizontal wires below a row of gates.

    A wire spans from just left of gate ``i`` to just short of gate
    ``i+span``'s left shifter, so a *risky* wire interacts with both
    shifters of the covered gates but only the left shifter of the next
    gate — exactly the Figure-1 odd-cycle pattern.
    """
    if not gates:
        return
    n_wires = max(0, round(params.wires_per_row * len(gates)))
    if n_wires == 0:
        return
    base_y = gates[0].y1
    used_spans: List[Rect] = []
    for _ in range(n_wires):
        i = rng.randrange(len(gates))
        span = rng.randint(*params.wire_span_gates)
        j = min(i + span, len(gates) - 1)
        x1 = gates[i].x1 - rng.randint(0, 60)
        x2 = gates[j].x2 + rng.randint(0, 60)
        if x2 - x1 < 200:
            x2 = x1 + 200
        width = rng.choice(params.wire_width_choices)
        risky = rng.random() < params.risky_wire_fraction
        gap = rng.randint(*(params.risky_wire_gap if risky
                            else params.safe_wire_gap))
        wire = Rect(x1, base_y - gap - width, x2, base_y - gap)
        # Keep wires well clear of each other (poly spacing + shifter
        # spacing margin) so conflicts only come from wire-gate cycles.
        if any(wire.within_distance(w, 360) for w in used_spans):
            continue
        used_spans.append(wire)
        layout.add_feature(wire)


# ----------------------------------------------------------------------
# Deterministic pattern layouts
# ----------------------------------------------------------------------
def grating_layout(n_lines: int, pitch: int = 300, width: int = 90,
                   height: int = 1000, name: str = "grating") -> Layout:
    """A 1-D grating: a same-phase chain with no cycles.

    Always phase-assignable — the standard negative control.
    """
    layout = Layout(name=name)
    for i in range(n_lines):
        x = i * pitch
        layout.add_feature(Rect(x, 0, x + width, height))
    return layout


def figure1_layout(name: str = "figure1") -> Layout:
    """The paper's Figure-1 situation: an odd phase cycle.

    Two vertical gates at interacting pitch plus a horizontal wire whose
    top shifter reaches both shifters of the left gate, closing an odd
    cycle through the gate's feature edge.  Not phase-assignable.
    """
    layout = Layout(name=name)
    layout.add_feature(Rect(0, 0, 90, 1000))        # gate A
    layout.add_feature(Rect(340, 0, 430, 1000))     # gate B (A.R ~ B.L)
    layout.add_feature(Rect(-150, -290, 300, -200))  # wire under A only
    return layout


def odd_cycle_chain(n_gates: int, pitch: int = 340,
                    name: str = "oddchain") -> Layout:
    """``n_gates`` interacting gates with a risky wire under the first.

    Generalises :func:`figure1_layout`; exactly one odd cycle regardless
    of ``n_gates``, with an increasingly long even tail.  Used to check
    that detection selects exactly one conflict however long the chain.
    """
    layout = Layout(name=name)
    for i in range(n_gates):
        x = i * pitch
        layout.add_feature(Rect(x, 0, x + 90, 1000))
    layout.add_feature(Rect(-150, -290, 300, -200))
    return layout


def conflict_grid_layout(clusters_x: int, clusters_y: int,
                         cluster_pitch: int = 3000,
                         name: str = "conflictgrid") -> Layout:
    """A grid of independent Figure-1 clusters: exactly one conflict each.

    Gives workloads with a *known* optimal conflict count
    (= clusters_x * clusters_y), which the detection tests use as ground
    truth for optimality checks at scale.
    """
    layout = Layout(name=name)
    for cx in range(clusters_x):
        for cy in range(clusters_y):
            ox = cx * cluster_pitch
            oy = cy * cluster_pitch
            layout.add_feature(Rect(ox, oy, ox + 90, oy + 1000))
            layout.add_feature(Rect(ox + 340, oy, ox + 430, oy + 1000))
            layout.add_feature(Rect(ox - 150, oy - 290, ox + 300, oy - 200))
    return layout


def random_rect_layout(n_rects: int, seed: int = 0,
                       region: int = 20000,
                       name: str = "random") -> Layout:
    """Random non-overlapping rects by rejection sampling.

    Not DRC-clean in general; used by property tests that only need
    "a bag of disjoint rectangles".
    """
    rng = random.Random(seed)
    layout = Layout(name=name)
    placed: List[Rect] = []
    attempts = 0
    while len(placed) < n_rects and attempts < 50 * n_rects:
        attempts += 1
        w = rng.choice((90, 110, 200, 90, 100))
        h = rng.randint(300, 1200)
        if rng.random() < 0.5:
            w, h = h, w
        x = rng.randrange(0, region)
        y = rng.randrange(0, region)
        rect = Rect(x, y, x + w, y + h)
        if any(rect.within_distance(p, 140) for p in placed):
            continue
        placed.append(rect)
        layout.add_feature(rect)
    return layout
