"""Integer-weight blossom matching on flat arrays.

Galil's primal-dual blossom-shrinking algorithm for maximum-weight
(max-cardinality) matching in general graphs, in the array formulation
of van Rantwijk's classic ``mwmatching`` (the same lineage as
networkx's implementation) — but specialised hard for this repo's hot
path:

* every piece of solver state is a flat Python list indexed by dense
  integer ids (vertices ``0..n-1``, blossoms ``n..2n-1``) — no dicts,
  no adjacency views, no per-access wrapper objects;
* edges are one flat array with the *endpoint trick*: edge ``k`` owns
  endpoints ``2k`` / ``2k+1``, so "the other side of the edge I came
  in through" is a single XOR;
* all arithmetic is exact integer arithmetic.  Dual variables store
  ``2*u(v)`` so integer edge weights keep integer duals throughout,
  which is what makes the optimum *certifiable*: :func:`verify` below
  re-checks dual feasibility, complementary slackness, and blossom
  fullness post-solve in O(E · nesting) integer ops — the cheap
  replacement for networkx's ``verifyOptimum``.

The driver in :mod:`repro.graph.matching` feeds this one connected
component at a time (blossom is super-linear, and the detection flow's
gadget graphs are highly fragmented), with weights transformed so that
maximum-weight max-cardinality matching solves minimum-weight perfect
matching.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["MatchingCertificateError", "max_weight_matching", "verify"]


class MatchingCertificateError(RuntimeError):
    """The post-solve integer dual certificate failed.

    This can only happen on a solver bug (or a non-integer / corrupted
    input): the duals produced by a correct run always certify.
    """


def max_weight_matching(nvertex: int,
                        edges: Sequence[Tuple[int, int, int]],
                        maxcardinality: bool = True,
                        certify: bool = True) -> Tuple[List[int], int]:
    """Maximum-weight (optionally max-cardinality) matching.

    Args:
        nvertex: vertices are ``0..nvertex-1``.
        edges: ``(i, j, weight)`` triples with ``i != j`` and integer
            weights; parallel edges are allowed.
        maxcardinality: when True, only maximum-cardinality matchings
            are considered (among those, maximum weight wins) — the
            mode the min-weight-perfect-matching reduction needs.
        certify: run :func:`verify` on the final duals.

    Returns:
        ``(mate_edge, stages)`` — ``mate_edge[v]`` is the index into
        ``edges`` of the edge matching ``v`` (-1 when unmatched), and
        ``stages`` counts the augmentation stages performed.
    """
    if nvertex == 0 or not edges:
        return [-1] * nvertex, 0

    nedge = len(edges)
    maxweight = max(w for (_i, _j, w) in edges)
    if maxweight < 0:
        maxweight = 0

    # endpoint[p] is the vertex at endpoint p; edge k owns endpoints
    # 2k and 2k+1, so endpoint[p ^ 1] is the far side of p's edge.
    endpoint: List[int] = []
    for (i, j, _w) in edges:
        endpoint.append(i)
        endpoint.append(j)

    # neighbend[v]: remote endpoints of v's incident edges.
    neighbend: List[List[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    # mate[v]: remote endpoint of v's matched edge, or -1.
    mate = [-1] * nvertex
    # label[b] for top-level blossom b: 0 free, 1 S, 2 T (5 marks
    # scanBlossom breadcrumbs).  Also kept per vertex for T-interior
    # relabeling.
    label = [0] * (2 * nvertex)
    # labelend[b]: remote endpoint of the edge through which b got its
    # label, or -1.
    labelend = [-1] * (2 * nvertex)
    # inblossom[v]: top-level blossom containing vertex v.
    inblossom = list(range(nvertex))
    # Blossom forest: parent, ordered children, base vertex, and the
    # connecting endpoints between consecutive children.
    blossomparent = [-1] * (2 * nvertex)
    blossomchilds: List = [None] * (2 * nvertex)
    blossombase = list(range(nvertex)) + [-1] * nvertex
    blossomendps: List = [None] * (2 * nvertex)
    # bestedge[b]: least-slack edge from b to a different S-blossom
    # (delta2/delta3 candidates); blossombestedges[b] caches the
    # per-neighbour least-slack list for non-trivial S-blossoms.
    bestedge = [-1] * (2 * nvertex)
    blossombestedges: List = [None] * (2 * nvertex)
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    # dualvar[v] = 2u(v) for vertices, z(b) for blossoms.  Starting at
    # maxweight keeps all slacks non-negative and all duals integral.
    dualvar = [maxweight] * nvertex + [0] * nvertex
    allowedge = [False] * nedge
    queue: List[int] = []

    def slack(k: int) -> int:
        (i, j, wt) = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            stack = list(blossomchilds[b])
            while stack:
                t = stack.pop()
                if t < nvertex:
                    yield t
                else:
                    stack.extend(blossomchilds[t])

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            # S-blossom: all its vertices become scan sources.
            queue.extend(blossom_leaves(b))
        else:
            # T-blossom: its matched partner becomes an S-blossom.
            base = blossombase[b]
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Lowest common S-ancestor of the alternating trees through
        v and w, or -1 (the edge closes an augmenting path)."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            path.append(b)
            label[b] = 5
            if labelend[b] == -1:
                v = -1  # root of its tree
            else:
                v = endpoint[labelend[b]]        # into the T-blossom
                b = inblossom[v]
                v = endpoint[labelend[b]]        # and up to the next S
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Shrink the odd cycle through S-S edge k and base into a new
        blossom."""
        (v, w, _wt) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                # Formerly T-labeled vertices become scan sources now.
                queue.append(leaf)
            inblossom[leaf] = b
        # Merge the children's least-slack caches.
        bestedgeto = [-1] * (2 * nvertex)
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [[p // 2 for p in neighbend[leaf]]
                           for leaf in blossom_leaves(bv)]
            else:
                nblists = [blossombestedges[bv]]
            for nblist in nblists:
                for kk in nblist:
                    (i, j, _wt) = edges[kk]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (bj != b and label[bj] == 1
                            and (bestedgeto[bj] == -1
                                 or slack(kk) < slack(bestedgeto[bj]))):
                        bestedgeto[bj] = kk
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [kk for kk in bestedgeto if kk != -1]
        bestedge[b] = -1
        for kk in blossombestedges[b]:
            if bestedge[b] == -1 or slack(kk) < slack(bestedge[b]):
                bestedge[b] = kk

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo a blossom whose dual hit zero (or at stage end)."""
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        if (not endstage) and label[b] == 2:
            # A T-blossom expanding mid-stage: relabel the even path
            # from the entry child around to the base, and leave the
            # rest free (they may be reached later through different
            # edges).
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[endpoint[
                    blossomendps[b][j - endptrick] ^ endptrick ^ 1]] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                leaf = -1
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        break
                if leaf != -1 and label[leaf] != 0:
                    label[leaf] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(leaf, 2, labelend[leaf])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Rotate blossom b so v becomes its base, flipping the
        matching along the even path."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]

    def augment_matching(k: int) -> None:
        """Flip the matching along the augmenting path through edge k."""
        (v, w, _wt) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a root
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # ------------------------------------------------------------------
    # Main loop: one stage per augmentation.
    # ------------------------------------------------------------------
    stages = 0
    for _stage in range(nvertex):
        label[:] = [0] * (2 * nvertex)
        bestedge[:] = [-1] * (2 * nvertex)
        for b in range(nvertex, 2 * nvertex):
            blossombestedges[b] = None
        allowedge[:] = [False] * nedge
        queue[:] = []
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue  # internal to a blossom
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        bw = inblossom[w]
                        if label[bw] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[bw] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            # Inside a T-blossom but not yet labeled.
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # Dual update: the minimum over the four delta types.
            deltatype = -1
            delta = deltaedge = deltablossom = -1
            if not maxcardinality:
                deltatype = 1
                delta = min(dualvar[:nvertex])
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            for b in range(2 * nvertex):
                if (blossomparent[b] == -1 and label[b] == 1
                        and bestedge[b] != -1):
                    d = slack(bestedge[b]) // 2
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            for b in range(nvertex, 2 * nvertex):
                if (blossombase[b] >= 0 and blossomparent[b] == -1
                        and label[b] == 2
                        and (deltatype == -1 or dualvar[b] < delta)):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                # No improvement possible: max-cardinality optimum.
                # One last update makes the duals certify.
                deltatype = 1
                delta = max(0, min(dualvar[:nvertex]))

            for v in range(nvertex):
                lab = label[inblossom[v]]
                if lab == 1:
                    dualvar[v] -= delta
                elif lab == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break  # optimum reached
            elif deltatype == 2:
                allowedge[deltaedge] = True
                (i, j, _wt) = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i = j
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                (i, _j, _wt) = edges[deltaedge]
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break
        stages += 1
        # Expand S-blossoms whose dual hit zero: they carry no weight
        # and would only slow the next stage.
        for b in range(nvertex, 2 * nvertex):
            if (blossomparent[b] == -1 and blossombase[b] >= 0
                    and label[b] == 1 and dualvar[b] == 0):
                expand_blossom(b, True)

    if certify:
        verify(nvertex, edges, maxcardinality, mate, endpoint,
               dualvar, blossomparent, blossombase, blossomendps)

    mate_edge = [(-1 if p == -1 else p // 2) for p in mate]
    return mate_edge, stages


def verify(nvertex: int, edges: Sequence[Tuple[int, int, int]],
           maxcardinality: bool, mate: List[int], endpoint: List[int],
           dualvar: List[int], blossomparent: List[int],
           blossombase: List[int], blossomendps: List) -> None:
    """Check the integer dual certificate; raise on any violation.

    Optimality of a max-weight (max-cardinality) matching follows from:
    all duals non-negative (vertex duals offset by the max-cardinality
    shift), every edge's slack non-negative, matched edges tight
    (slack 0), unmatched vertices' duals zero, and every blossom with a
    positive dual *full* (its internal matching covers all but the
    base).  All quantities are exact integers.
    """
    def fail(msg: str) -> None:
        raise MatchingCertificateError(msg)

    if maxcardinality:
        vdualoffset = max(0, -min(dualvar[:nvertex]))
    else:
        vdualoffset = 0
    if min(dualvar[:nvertex]) + vdualoffset < 0:
        fail("negative vertex dual")
    if nvertex and min(dualvar[nvertex:]) < 0:
        fail("negative blossom dual")
    for k, (i, j, wt) in enumerate(edges):
        s = dualvar[i] + dualvar[j] - 2 * wt
        iblossoms = [i]
        jblossoms = [j]
        while blossomparent[iblossoms[-1]] != -1:
            iblossoms.append(blossomparent[iblossoms[-1]])
        while blossomparent[jblossoms[-1]] != -1:
            jblossoms.append(blossomparent[jblossoms[-1]])
        iblossoms.reverse()
        jblossoms.reverse()
        for (bi, bj) in zip(iblossoms, jblossoms):
            if bi != bj:
                break
            s += 2 * dualvar[bi]
        if s < 0:
            fail(f"edge {k} has negative slack {s}")
        if mate[i] // 2 == k or mate[j] // 2 == k:
            if not (mate[i] // 2 == k and mate[j] // 2 == k):
                fail(f"edge {k} is half-matched")
            if s != 0:
                fail(f"matched edge {k} is not tight (slack {s})")
    for v in range(nvertex):
        if mate[v] < 0 and dualvar[v] + vdualoffset != 0:
            fail(f"unmatched vertex {v} has nonzero dual")
    for b in range(nvertex, 2 * nvertex):
        if blossombase[b] >= 0 and dualvar[b] > 0:
            if len(blossomendps[b]) % 2 != 1:
                fail(f"blossom {b} has even length")
            for p in blossomendps[b][1::2]:
                if mate[endpoint[p]] != p ^ 1 \
                        or mate[endpoint[p ^ 1]] != p:
                    fail(f"blossom {b} with positive dual is not full")
