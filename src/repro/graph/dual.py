"""Geometric dual graphs.

The minimum-weight bipartization of an embedded planar graph equals a
minimum-weight T-join on its geometric dual, where T is the set of
odd-length faces (paper §2, after Kahng et al. TCAD'99): deleting a
primal edge merges its two faces, and a set of deletions kills all odd
faces iff its dual edges form a T-join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .embedding import PlanarEmbedding
from .geomgraph import GeomGraph

PRIMAL_TAG = "primal"


@dataclass
class DualGraph:
    """Dual multigraph plus the odd-face T set.

    Dual nodes are face indices of the embedding.  Every live primal
    edge becomes one dual edge carrying the primal weight; a primal
    bridge becomes a dual self-loop (which no minimum T-join ever uses,
    since w >= 0 and a self-loop cannot change degree parity).
    """

    graph: GeomGraph
    tset: Set[int]
    primal_of: Dict[int, int]  # dual edge id -> primal edge id

    def primal_edges(self, dual_edge_ids) -> List[int]:
        return sorted(self.primal_of[eid] for eid in dual_edge_ids)


def build_dual(embedding: PlanarEmbedding) -> DualGraph:
    """Construct the dual of an embedded planar graph."""
    dual = GeomGraph(name=f"{embedding.graph.name}#dual")
    for face_index in range(embedding.num_faces):
        dual.add_node(face_index)

    primal_of: Dict[int, int] = {}
    for e in embedding.graph.edges():
        f1, f2 = embedding.edge_faces(e.id)
        dual_edge = dual.add_edge(f1, f2, weight=e.weight,
                                  tag=(PRIMAL_TAG, e.id))
        primal_of[dual_edge.id] = e.id

    return DualGraph(graph=dual, tset=set(embedding.odd_faces()),
                     primal_of=primal_of)
