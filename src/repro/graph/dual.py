"""Geometric dual graphs.

The minimum-weight bipartization of an embedded planar graph equals a
minimum-weight T-join on its geometric dual, where T is the set of
odd-length faces (paper §2, after Kahng et al. TCAD'99): deleting a
primal edge merges its two faces, and a set of deletions kills all odd
faces iff its dual edges form a T-join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .embedding import PlanarEmbedding
from .geomgraph import GeomGraph

PRIMAL_TAG = "primal"


@dataclass
class DualGraph:
    """Dual multigraph plus the odd-face T set.

    Dual nodes are face indices of the embedding.  Every live primal
    edge becomes one dual edge carrying the primal weight; a primal
    bridge becomes a dual self-loop (which no minimum T-join ever uses,
    since w >= 0 and a self-loop cannot change degree parity).
    """

    graph: GeomGraph
    tset: Set[int]
    primal_of: Dict[int, int]  # dual edge id -> primal edge id

    def primal_edges(self, dual_edge_ids) -> List[int]:
        return sorted(self.primal_of[eid] for eid in dual_edge_ids)


def build_dual(embedding: PlanarEmbedding) -> DualGraph:
    """Construct the dual of an embedded planar graph.

    Bulk build off the embedding's edge-face columns: dual edge ``k``
    corresponds to the ``k``-th live primal edge, so ids and iteration
    order match the historical per-edge construction exactly.
    """
    dual = GeomGraph(name=f"{embedding.graph.name}#dual")
    dual.add_nodes(range(embedding.num_faces))

    primal_ids, left, right = embedding.edge_face_columns()
    weight = embedding.graph.edge_weight
    ids = dual.add_edge_rows(
        [(f1, f2, weight(eid), (PRIMAL_TAG, eid))
         for eid, f1, f2 in zip(primal_ids, left, right)])
    primal_of = dict(zip(ids, primal_ids))

    return DualGraph(graph=dual, tset=set(embedding.odd_faces()),
                     primal_of=primal_of)
