"""Weighted geometric multigraphs on flat arrays.

The conflict-detection flow manipulates graphs whose nodes carry exact
integer coordinates (doubled layout coordinates so rectangle centres stay
integral) and whose edges are straight segments.  The same structure,
minus the coordinates, also represents the dual graphs and gadget graphs,
so it supports parallel edges and self-loops with stable integer edge
ids.

Storage is struct-of-arrays: edges live in parallel endpoint / weight /
tag columns and adjacency is a CSR table (``indptr`` / ``neighbors`` /
``edge_ids``) built lazily in one pass — vectorized through numpy when
available, by a scalar pass otherwise — instead of per-edge adjacency
list appends.  :class:`Edge` objects are materialized on demand and
memoized, so bulk construction and array-level consumers (coloring,
components, embedding) never pay for them.  The id-stability contract:
node iteration order is insertion order, edge ids are assigned
sequentially, and a node's incident edges enumerate in ascending edge
id — exactly the orders the incremental cache keys and component ids
were derived from, however the graph was built.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, \
    Set, Tuple

Point = Tuple[int, int]

# Below this many darts a scalar CSR pass beats numpy's fixed overhead;
# the two builders are byte-equivalent (asserted by the differential
# suite), so the crossover is purely a latency knob.
_NUMPY_MIN_DARTS = 256

_np: Any = False  # unresolved; resolved to a module or None on first use


def _numpy():
    """The numpy module, or None when unavailable (resolved once)."""
    global _np
    if _np is False:
        try:
            import numpy
            _np = numpy
        except ImportError:  # pragma: no cover - exercised on bare images
            _np = None
    return _np


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected weighted edge with a stable id and an opaque tag."""

    id: int
    u: int
    v: int
    weight: int
    tag: Any = None

    def other(self, node: int) -> int:
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} not an endpoint of edge {self.id}")

    @property
    def is_self_loop(self) -> bool:
        return self.u == self.v


class _CSR:
    """Adjacency of every edge (removed included) in flat arrays.

    ``indptr[i]:indptr[i+1]`` slices the darts of the node at dense
    index ``i``; ``edge_ids`` holds ascending edge ids per node and
    ``neighbors`` the opposite endpoint *labels*.  Removal is a query-
    time filter, so soft remove/restore never invalidates the table.
    ``eid_buf`` keeps a sliceable buffer (numpy array or ``array('q')``)
    over the same edge ids so :meth:`GeomGraph.incident_edge_ids` can
    hand out zero-copy views.
    """

    __slots__ = ("indptr", "neighbors", "edge_ids", "eid_buf")

    def __init__(self, indptr: List[int], neighbors: List[int],
                 edge_ids: List[int], eid_buf) -> None:
        self.indptr = indptr
        self.neighbors = neighbors
        self.edge_ids = edge_ids
        self.eid_buf = eid_buf


class GeomGraph:
    """Undirected multigraph with optional node coordinates.

    Nodes are integers.  Edge removal is *soft* (edges keep their ids and
    are flagged removed) so flows can report exactly which edges each
    stage deleted.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        # label -> dense index, in insertion order (the dict IS the
        # node registry; dense index == insertion position).
        self._node_index: Dict[int, int] = {}
        self._labels: List[int] = []
        self._coords: Dict[int, Point] = {}
        # Edge columns, indexed by edge id.
        self._eu: List[int] = []
        self._ev: List[int] = []
        self._ew: List[int] = []
        self._etags: List[Any] = []
        self._removed: Set[int] = set()
        # True while node labels are exactly 0..n-1 in insertion order
        # (conflict/dual/gadget graphs) — lets the CSR builder skip the
        # label -> index translation.
        self._dense_labels = True
        # Lazy caches, all keyed on the mutation epoch.
        self._csr: Optional[_CSR] = None
        self._edge_cache: Dict[int, Edge] = {}
        self._array_cache: Dict[str, Tuple[int, Any]] = {}
        self._epoch = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _register(self, node: int) -> None:
        index = self._node_index
        if node not in index:
            if node != len(self._labels):
                self._dense_labels = False
            index[node] = len(self._labels)
            self._labels.append(node)

    def _dirty(self) -> None:
        self._epoch += 1
        self._csr = None

    def add_node(self, node: int, coord: Optional[Point] = None) -> int:
        self._register(node)
        if coord is not None:
            self._coords[node] = coord
        self._dirty()
        return node

    def add_edge(self, u: int, v: int, weight: int = 1,
                 tag: Any = None) -> Edge:
        self._register(u)
        self._register(v)
        eid = len(self._eu)
        self._eu.append(u)
        self._ev.append(v)
        self._ew.append(weight)
        self._etags.append(tag)
        self._dirty()
        edge = Edge(eid, u, v, weight, tag)
        self._edge_cache[eid] = edge
        return edge

    def add_nodes(self, nodes: Iterable[int],
                  coords: Optional[Iterable[Optional[Point]]] = None
                  ) -> None:
        """Bulk :meth:`add_node`: same registration semantics, one
        call.  ``coords`` (when given) pairs positionally with
        ``nodes``; ``None`` entries leave a node coordinate-free."""
        register = self._register
        if coords is None:
            for node in nodes:
                register(node)
        else:
            cmap = self._coords
            for node, coord in zip(nodes, coords):
                register(node)
                if coord is not None:
                    cmap[node] = coord
        self._dirty()

    def add_edge_rows(self, rows: Iterable[Tuple[int, int, int, Any]]
                      ) -> range:
        """Bulk edge append over ``(u, v, weight, tag)`` rows.

        The array-native fast path: ids are assigned sequentially in
        row order and endpoints register in per-row ``u``-then-``v``
        order — byte-identical ids and iteration order to the
        equivalent loop of :meth:`add_edge` calls — but no :class:`Edge`
        objects are built.  Returns the ``range`` of assigned ids.
        """
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        start = len(self._eu)
        if not rows:
            return range(start, start)
        index = self._node_index
        register = self._register
        for row in rows:
            u = row[0]
            if u not in index:
                register(u)
            v = row[1]
            if v not in index:
                register(v)
        us, vs, ws, tags = zip(*rows)
        self._eu.extend(us)
        self._ev.extend(vs)
        self._ew.extend(ws)
        self._etags.extend(tags)
        self._dirty()
        return range(start, len(self._eu))

    def add_edges(self, rows: Iterable[Tuple[int, int, int, Any]]
                  ) -> List[Edge]:
        """Bulk :meth:`add_edge` over ``(u, v, weight, tag)`` rows.

        Same id assignment as :meth:`add_edge_rows`, plus materialized
        :class:`Edge` objects for callers that want them.
        """
        return [self.edge(eid) for eid in self.add_edge_rows(rows)]

    def remove_edge(self, edge_id: int) -> None:
        """Soft-remove an edge (it stays addressable by id)."""
        self._removed.add(edge_id)

    def restore_edge(self, edge_id: int) -> None:
        self._removed.discard(edge_id)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        return list(self._labels)

    def num_nodes(self) -> int:
        return len(self._labels)

    def num_edges(self) -> int:
        """Count of live (non-removed) edges."""
        return len(self._eu) - len(self._removed)

    def coord(self, node: int) -> Point:
        return self._coords[node]

    def has_coords(self) -> bool:
        return len(self._coords) == len(self._labels)

    def edge(self, edge_id: int) -> Edge:
        edge = self._edge_cache.get(edge_id)
        if edge is None:
            edge = Edge(edge_id, self._eu[edge_id], self._ev[edge_id],
                        self._ew[edge_id], self._etags[edge_id])
            self._edge_cache[edge_id] = edge
        return edge

    def edge_weight(self, edge_id: int) -> int:
        """Weight column lookup, no :class:`Edge` materialization."""
        return self._ew[edge_id]

    def is_removed(self, edge_id: int) -> bool:
        return edge_id in self._removed

    def edges(self, include_removed: bool = False) -> Iterator[Edge]:
        removed = self._removed
        edge = self.edge
        for eid in range(len(self._eu)):
            if include_removed or eid not in removed:
                yield edge(eid)

    def live_edge_rows(self) -> Iterator[Tuple[int, int, int, int]]:
        """``(id, u, v, weight)`` of every live edge, in id order.

        The Edge-free counterpart of :meth:`edges` for array-level
        consumers (components, gadgets, matching conversion).
        """
        removed = self._removed
        eu, ev, ew = self._eu, self._ev, self._ew
        if removed:
            for eid in range(len(eu)):
                if eid not in removed:
                    yield eid, eu[eid], ev[eid], ew[eid]
        else:
            yield from zip(range(len(eu)), eu, ev, ew)

    def incident(self, node: int, include_removed: bool = False
                 ) -> Iterator[Edge]:
        csr = self._csr or self._build_csr()
        i = self._node_index.get(node)
        if i is None:
            return
        removed = self._removed
        edge_ids = csr.edge_ids
        edge = self.edge
        for k in range(csr.indptr[i], csr.indptr[i + 1]):
            eid = edge_ids[k]
            if include_removed or eid not in removed:
                yield edge(eid)

    def incident_edge_ids(self, node: int) -> Sequence[int]:
        """Zero-copy view of a node's incident edge ids, ascending.

        Soft-removed edges are included (filter with
        :meth:`is_removed`); the returned object is a slice *view* of
        the CSR buffer — a numpy view or a ``memoryview`` — never a
        freshly built list, so repeated queries allocate no per-edge
        garbage.
        """
        csr = self._csr or self._build_csr()
        i = self._node_index.get(node)
        if i is None:
            return ()
        if csr.eid_buf is None:
            csr.eid_buf = memoryview(array("q", csr.edge_ids))
        return csr.eid_buf[csr.indptr[i]:csr.indptr[i + 1]]

    def degree(self, node: int) -> int:
        """Degree counting self-loops twice (graph-theoretic degree)."""
        csr = self._csr or self._build_csr()
        i = self._node_index.get(node)
        if i is None:
            return 0
        removed = self._removed
        neighbors = csr.neighbors
        edge_ids = csr.edge_ids
        d = 0
        for k in range(csr.indptr[i], csr.indptr[i + 1]):
            if edge_ids[k] in removed:
                continue
            d += 2 if neighbors[k] == node else 1
        return d

    def segment(self, edge_id: int) -> Tuple[Point, Point]:
        coords = self._coords
        return (coords[self._eu[edge_id]], coords[self._ev[edge_id]])

    def total_weight(self, edge_ids: Iterable[int]) -> int:
        ew = self._ew
        return sum(ew[eid] for eid in edge_ids)

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def _build_csr(self) -> _CSR:
        np = _numpy() if 2 * len(self._eu) >= _NUMPY_MIN_DARTS else None
        csr = (self._build_csr_scalar() if np is None
               else self._build_csr_numpy(np))
        self._csr = csr
        return csr

    def _dense_endpoints(self, np):
        """Cached int64 arrays of dense endpoint indices per edge."""
        cached = self._array_cache.get("endpoints")
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        n_edges = len(self._eu)
        if self._dense_labels:
            ui = np.array(self._eu, dtype=np.int64)
            vi = np.array(self._ev, dtype=np.int64)
        else:
            get = self._node_index.__getitem__
            ui = np.fromiter(map(get, self._eu), dtype=np.int64,
                             count=n_edges)
            vi = np.fromiter(map(get, self._ev), dtype=np.int64,
                             count=n_edges)
        self._array_cache["endpoints"] = (self._epoch, (ui, vi))
        return ui, vi

    def coord_arrays(self, np):
        """Cached int64 coordinate columns per dense node index.

        Raises KeyError when any node lacks a coordinate (same contract
        as :meth:`coord`).
        """
        cached = self._array_cache.get("coords")
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        coords = self._coords
        n = len(self._labels)
        xs = np.fromiter((coords[lab][0] for lab in self._labels),
                         dtype=np.int64, count=n)
        ys = np.fromiter((coords[lab][1] for lab in self._labels),
                         dtype=np.int64, count=n)
        self._array_cache["coords"] = (self._epoch, (xs, ys))
        return xs, ys

    def _build_csr_numpy(self, np) -> _CSR:
        """One vectorized pass: lexsort darts by (node, edge id)."""
        n = len(self._labels)
        ui, vi = self._dense_endpoints(np)
        n_edges = len(self._eu)
        eids = np.arange(n_edges, dtype=np.int64)
        nonloop = ui != vi
        # Self-loops contribute a single dart, like the historical
        # adjacency lists.
        node_keys = np.concatenate([ui, vi[nonloop]])
        dart_eids = np.concatenate([eids, eids[nonloop]])
        others = np.concatenate([vi, ui[nonloop]])
        order = np.lexsort((dart_eids, node_keys))
        eid_sorted = dart_eids[order]
        other_sorted = others[order]
        counts = np.bincount(node_keys, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if self._dense_labels:
            neighbor_labels = other_sorted
        else:
            labels_arr = np.array(self._labels, dtype=np.int64)
            neighbor_labels = labels_arr[other_sorted]
        # Python-int mirrors for the traversal loops (plain ints hash
        # faster than numpy scalars and can never leak into reports);
        # the numpy buffer stays behind for zero-copy views.
        return _CSR(indptr.tolist(), neighbor_labels.tolist(),
                    eid_sorted.tolist(), eid_sorted)

    def _build_csr_scalar(self) -> _CSR:
        """Pure-python CSR build mirroring the numpy pass exactly."""
        n = len(self._labels)
        index = self._node_index
        adj_eids: List[List[int]] = [[] for _ in range(n)]
        adj_nbrs: List[List[int]] = [[] for _ in range(n)]
        for eid, (u, v) in enumerate(zip(self._eu, self._ev)):
            i = index[u]
            adj_eids[i].append(eid)
            adj_nbrs[i].append(v)
            if u != v:
                j = index[v]
                adj_eids[j].append(eid)
                adj_nbrs[j].append(u)
        indptr = [0] * (n + 1)
        total = 0
        for i, bucket in enumerate(adj_eids):
            total += len(bucket)
            indptr[i + 1] = total
        edge_ids: List[int] = []
        neighbors: List[int] = []
        for i in range(n):
            edge_ids.extend(adj_eids[i])
            neighbors.extend(adj_nbrs[i])
        return _CSR(indptr, neighbors, edge_ids, None)

    def csr(self) -> _CSR:
        """The (lazily built) CSR adjacency table."""
        return self._csr or self._build_csr()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[int]]:
        """Components over live edges, each sorted; includes isolated nodes."""
        csr = self._csr or self._build_csr()
        indptr = csr.indptr
        neighbors = csr.neighbors
        edge_ids = csr.edge_ids
        index = self._node_index
        removed = self._removed
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in self._labels:
            if start in seen:
                continue
            seen.add(start)
            stack = [start]
            comp: List[int] = []
            while stack:
                node = stack.pop()
                comp.append(node)
                i = index[node]
                for k in range(indptr[i], indptr[i + 1]):
                    if edge_ids[k] in removed:
                        continue
                    nxt = neighbors[k]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            components.append(sorted(comp))
        return components

    def subgraph(self, nodes: Iterable[int]) -> "GeomGraph":
        """Live-edge induced subgraph (edge ids are re-numbered; original
        ids preserved in each edge's tag as ``("orig", id, tag)``)."""
        node_set = set(nodes)
        out = GeomGraph(name=f"{self.name}#sub")
        ordered = sorted(node_set)
        coords = self._coords
        out.add_nodes(ordered, [coords.get(n) for n in ordered])
        etags = self._etags
        rows = [(u, v, w, ("orig", eid, etags[eid]))
                for eid, u, v, w in self.live_edge_rows()
                if u in node_set and v in node_set]
        out.add_edge_rows(rows)
        return out

    def to_networkx(self):
        """Lossy export (min-weight parallel edge wins) for cross-checks."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._labels)
        for eid, u, v, w in self.live_edge_rows():
            if u == v:
                continue
            if g.has_edge(u, v):
                if g[u][v]["weight"] <= w:
                    continue
            g.add_edge(u, v, weight=w, eid=eid)
        return g

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GeomGraph(name={self.name!r}, nodes={len(self._labels)}, "
                f"edges={len(self._eu)}, removed={len(self._removed)})")

    def __getstate__(self):
        # Caches hold unpicklable buffers (memoryview) and are cheap to
        # rebuild; strip them so graphs stay picklable for the store.
        state = self.__dict__.copy()
        state["_csr"] = None
        state["_edge_cache"] = {}
        state["_array_cache"] = {}
        return state
