"""Weighted geometric multigraphs.

The conflict-detection flow manipulates graphs whose nodes carry exact
integer coordinates (doubled layout coordinates so rectangle centres stay
integral) and whose edges are straight segments.  The same structure,
minus the coordinates, also represents the dual graphs and gadget graphs,
so it supports parallel edges and self-loops with stable integer edge
ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

Point = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected weighted edge with a stable id and an opaque tag."""

    id: int
    u: int
    v: int
    weight: int
    tag: Any = None

    def other(self, node: int) -> int:
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} not an endpoint of edge {self.id}")

    @property
    def is_self_loop(self) -> bool:
        return self.u == self.v


@dataclass
class GeomGraph:
    """Undirected multigraph with optional node coordinates.

    Nodes are integers.  Edge removal is *soft* (edges keep their ids and
    are flagged removed) so flows can report exactly which edges each
    stage deleted.
    """

    name: str = "graph"
    _coords: Dict[int, Point] = field(default_factory=dict)
    _edges: List[Edge] = field(default_factory=list)
    _adj: Dict[int, List[int]] = field(default_factory=dict)
    _removed: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, coord: Optional[Point] = None) -> int:
        if node not in self._adj:
            self._adj[node] = []
        if coord is not None:
            self._coords[node] = coord
        return node

    def add_edge(self, u: int, v: int, weight: int = 1,
                 tag: Any = None) -> Edge:
        # Hot path (hundreds of thousands of calls per chip-scale
        # detection): node registration is inlined rather than going
        # through add_node().
        adj = self._adj
        if u not in adj:
            adj[u] = []
        if v not in adj:
            adj[v] = []
        eid = len(self._edges)
        edge = Edge(eid, u, v, weight, tag)
        self._edges.append(edge)
        adj[u].append(eid)
        if v != u:
            adj[v].append(eid)
        return edge

    def add_nodes(self, nodes: Iterable[int],
                  coords: Optional[Iterable[Optional[Point]]] = None
                  ) -> None:
        """Bulk :meth:`add_node`: same registration semantics, one
        call.  ``coords`` (when given) pairs positionally with
        ``nodes``; ``None`` entries leave a node coordinate-free."""
        adj = self._adj
        if coords is None:
            for node in nodes:
                if node not in adj:
                    adj[node] = []
            return
        cmap = self._coords
        for node, coord in zip(nodes, coords):
            if node not in adj:
                adj[node] = []
            if coord is not None:
                cmap[node] = coord

    def add_edges(self, rows: Iterable[Tuple[int, int, int, Any]]
                  ) -> List[Edge]:
        """Bulk :meth:`add_edge` over ``(u, v, weight, tag)`` rows.

        Ids are assigned sequentially in row order — byte-identical
        node/edge ids and iteration order to the equivalent loop of
        per-edge calls, without paying a method call and four
        attribute lookups per edge (the graph builders issue hundreds
        of thousands on chip-scale layouts).
        """
        adj = self._adj
        edges = self._edges
        append = edges.append
        out: List[Edge] = []
        push = out.append
        eid = len(edges)
        for u, v, weight, tag in rows:
            if u not in adj:
                adj[u] = []
            if v not in adj:
                adj[v] = []
            edge = Edge(eid, u, v, weight, tag)
            append(edge)
            adj[u].append(eid)
            if v != u:
                adj[v].append(eid)
            push(edge)
            eid += 1
        return out

    def remove_edge(self, edge_id: int) -> None:
        """Soft-remove an edge (it stays addressable by id)."""
        self._removed.add(edge_id)

    def restore_edge(self, edge_id: int) -> None:
        self._removed.discard(edge_id)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        return list(self._adj)

    def num_nodes(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        """Count of live (non-removed) edges."""
        return len(self._edges) - len(self._removed)

    def coord(self, node: int) -> Point:
        return self._coords[node]

    def has_coords(self) -> bool:
        return len(self._coords) == len(self._adj)

    def edge(self, edge_id: int) -> Edge:
        return self._edges[edge_id]

    def is_removed(self, edge_id: int) -> bool:
        return edge_id in self._removed

    def edges(self, include_removed: bool = False) -> Iterator[Edge]:
        for e in self._edges:
            if include_removed or e.id not in self._removed:
                yield e

    def incident(self, node: int, include_removed: bool = False
                 ) -> Iterator[Edge]:
        for eid in self._adj.get(node, ()):
            if include_removed or eid not in self._removed:
                yield self._edges[eid]

    def degree(self, node: int) -> int:
        """Degree counting self-loops twice (graph-theoretic degree)."""
        d = 0
        for e in self.incident(node):
            d += 2 if e.is_self_loop else 1
        return d

    def segment(self, edge_id: int) -> Tuple[Point, Point]:
        e = self._edges[edge_id]
        return (self._coords[e.u], self._coords[e.v])

    def total_weight(self, edge_ids: Iterable[int]) -> int:
        return sum(self._edges[eid].weight for eid in edge_ids)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[int]]:
        """Components over live edges, each sorted; includes isolated nodes."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            comp = []
            while stack:
                node = stack.pop()
                comp.append(node)
                for e in self.incident(node):
                    nxt = e.other(node)
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            components.append(sorted(comp))
        return components

    def subgraph(self, nodes: Iterable[int]) -> "GeomGraph":
        """Live-edge induced subgraph (edge ids are re-numbered; original
        ids preserved in each edge's tag as ``("orig", id, tag)``)."""
        node_set = set(nodes)
        out = GeomGraph(name=f"{self.name}#sub")
        for n in sorted(node_set):
            out.add_node(n, self._coords.get(n))
        for e in self.edges():
            if e.u in node_set and e.v in node_set:
                out.add_edge(e.u, e.v, e.weight, tag=("orig", e.id, e.tag))
        return out

    def to_networkx(self):
        """Lossy export (min-weight parallel edge wins) for cross-checks."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        for e in self.edges():
            if e.is_self_loop:
                continue
            if g.has_edge(e.u, e.v):
                if g[e.u][e.v]["weight"] <= e.weight:
                    continue
            g.add_edge(e.u, e.v, weight=e.weight, eid=e.id)
        return g
