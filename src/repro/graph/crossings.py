"""Straight-line crossing detection and greedy planarization.

Paper §3, step 1(b): the phase conflict graph "is converted to an
embedded planar graph by applying the planar embedding algorithm [a
straight-line drawing at the layout coordinates] and greedily removing
minimum weight edges that cross other edges.  These edges are added to a
potential set of AAPSM conflicts P."

Two edges *conflict* when their segments share any point that is not a
common endpoint (proper crossings, T-junctions, collinear overlaps, and
distinct nodes drawn at the same point) — see
:func:`repro.geometry.segments_conflict`.  After planarization the
drawing is a valid plane straight-line graph, so face tracing by angular
order is exact.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from ..geometry import Rect, segment_bbox, segments_conflict
from ..geometry.kernels import get_kernel
from .geomgraph import GeomGraph


def find_crossing_pairs(graph: GeomGraph) -> List[Tuple[int, int]]:
    """All conflicting live edge pairs ``(i, j), i < j``.

    Candidate pairs come from the active geometry kernel: two segments
    can only conflict when their (closed) bounding boxes intersect.
    Segment boxes may be degenerate (axis-aligned segments), which
    :class:`Rect` rejects, so each box's high corner is padded by +1 —
    ``neighbor_pairs(padded, 1)`` then yields every pair whose original
    boxes have gap <= 1 on both axes: a superset of the touching pairs
    (the gap-1 extras cannot conflict and the exact integer predicate
    discards them), never a miss.
    """
    coords = graph._coords
    eids: List[int] = []
    segs: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for eid, u, v, _w in graph.live_edge_rows():
        if u == v:
            continue
        eids.append(eid)
        segs.append((coords[u], coords[v]))
    if not eids:
        return []
    boxes = []
    for a, b in segs:
        x1, y1, x2, y2 = segment_bbox(a, b)
        boxes.append(Rect(x1, y1, x2 + 1, y2 + 1))

    pairs: List[Tuple[int, int]] = []
    for i, j in get_kernel().neighbor_pairs(boxes, 1):
        a, b = segs[i]
        c, d = segs[j]
        if segments_conflict(a, b, c, d):
            # live_edge_rows yields in ascending id order, so (i, j)
            # with i < j maps to an ascending, already-sorted id pair.
            pairs.append((eids[i], eids[j]))
    return pairs


def count_crossings(graph: GeomGraph) -> int:
    """Number of conflicting edge pairs in the current drawing."""
    return len(find_crossing_pairs(graph))


def greedy_planarize(graph: GeomGraph) -> List[int]:
    """Remove minimum-weight crossing edges until the drawing is planar.

    Mutates ``graph`` (soft removal) and returns the removed edge ids —
    the paper's potential-conflict set ``P``.  Greedy rule: while any
    conflicts remain, delete the minimum-weight edge involved in at
    least one conflict (ties broken by most conflicts, then by id, so
    runs are deterministic).
    """
    pairs = find_crossing_pairs(graph)
    if not pairs:
        return []
    conflicts: Dict[int, Set[int]] = defaultdict(set)
    for a, b in pairs:
        conflicts[a].add(b)
        conflicts[b].add(a)

    removed: List[int] = []
    weight = graph.edge_weight
    while conflicts:
        victim = min(
            conflicts,
            key=lambda eid: (weight(eid), -len(conflicts[eid]), eid),
        )
        graph.remove_edge(victim)
        removed.append(victim)
        for other in conflicts.pop(victim):
            peers = conflicts[other]
            peers.discard(victim)
            if not peers:
                del conflicts[other]
    return removed
