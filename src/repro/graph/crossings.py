"""Straight-line crossing detection and greedy planarization.

Paper §3, step 1(b): the phase conflict graph "is converted to an
embedded planar graph by applying the planar embedding algorithm [a
straight-line drawing at the layout coordinates] and greedily removing
minimum weight edges that cross other edges.  These edges are added to a
potential set of AAPSM conflicts P."

Two edges *conflict* when their segments share any point that is not a
common endpoint (proper crossings, T-junctions, collinear overlaps, and
distinct nodes drawn at the same point) — see
:func:`repro.geometry.segments_conflict`.  After planarization the
drawing is a valid plane straight-line graph, so face tracing by angular
order is exact.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from ..geometry import GridIndex, segment_bbox, segments_conflict
from .geomgraph import GeomGraph


def find_crossing_pairs(graph: GeomGraph) -> List[Tuple[int, int]]:
    """All conflicting live edge pairs ``(i, j), i < j``.

    Uses a uniform grid over segment bounding boxes; exact integer
    predicates decide each candidate pair.
    """
    edges = [e for e in graph.edges() if not e.is_self_loop]
    if not edges:
        return []
    boxes = {e.id: segment_bbox(*graph.segment(e.id)) for e in edges}
    spans = [max(b[2] - b[0], b[3] - b[1]) for b in boxes.values()]
    cell = max(1, sorted(spans)[len(spans) // 2] + 1)
    index: GridIndex[int] = GridIndex(cell_size=cell)
    for e in edges:
        index.insert(e.id, boxes[e.id])

    pairs: Set[Tuple[int, int]] = set()
    for e in edges:
        a, b = graph.segment(e.id)
        for other_id in index.query(*boxes[e.id]):
            if other_id <= e.id:
                continue
            other = graph.edge(other_id)
            if other.u == other.v:
                continue
            c, d = graph.segment(other_id)
            if segments_conflict(a, b, c, d):
                pairs.add((e.id, other_id))
    return sorted(pairs)


def count_crossings(graph: GeomGraph) -> int:
    """Number of conflicting edge pairs in the current drawing."""
    return len(find_crossing_pairs(graph))


def greedy_planarize(graph: GeomGraph) -> List[int]:
    """Remove minimum-weight crossing edges until the drawing is planar.

    Mutates ``graph`` (soft removal) and returns the removed edge ids —
    the paper's potential-conflict set ``P``.  Greedy rule: while any
    conflicts remain, delete the minimum-weight edge involved in at
    least one conflict (ties broken by most conflicts, then by id, so
    runs are deterministic).
    """
    pairs = find_crossing_pairs(graph)
    if not pairs:
        return []
    conflicts: Dict[int, Set[int]] = defaultdict(set)
    for a, b in pairs:
        conflicts[a].add(b)
        conflicts[b].add(a)

    removed: List[int] = []
    while conflicts:
        victim = min(
            conflicts,
            key=lambda eid: (graph.edge(eid).weight, -len(conflicts[eid]),
                             eid),
        )
        graph.remove_edge(victim)
        removed.append(victim)
        for other in conflicts.pop(victim):
            peers = conflicts[other]
            peers.discard(victim)
            if not peers:
                del conflicts[other]
    return removed
