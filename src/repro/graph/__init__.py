"""Geometric graph stack (substrates S5-S8).

Construction (:class:`GeomGraph`), planarization by greedy crossing
removal, exact face tracing, geometric duals, T-join solvers (reference
shortest-path reduction and the paper's generalized-gadget reduction),
minimum-weight perfect matching, and the bipartization algorithms the
paper compares.
"""

from .bipartize import (
    METHOD_GADGET,
    METHOD_PATHS,
    BipartizationResult,
    greedy_odd_cycle_bipartization,
    greedy_spanning_tree_bipartization,
    optimal_planar_bipartization,
)
from .coloring import (
    ParityDSU,
    color_component,
    is_bipartite,
    residual_conflicts,
    two_color,
)
from .components import (
    ODD_COMPONENT,
    GraphComponent,
    RecolorStats,
    component_content_id,
    decode_coloring,
    decompose,
    encode_coloring,
    two_color_incremental,
)
from .crossings import count_crossings, find_crossing_pairs, greedy_planarize
from .dual import DualGraph, build_dual
from .embedding import PlanarEmbedding, build_embedding
from .gadgets import (
    GadgetGraph,
    build_gadget_graph,
    extract_tjoin,
    min_tjoin_gadget,
)
from .blossom import MatchingCertificateError
from .geomgraph import Edge, GeomGraph
from .matching import (
    DEFAULT_MATCHER,
    MATCHER_BACKENDS,
    MATCHER_ENV,
    MatcherBackend,
    NoPerfectMatchingError,
    brute_force_perfect_matching,
    get_matcher,
    is_perfect_matching,
    make_matcher,
    min_weight_perfect_matching,
    register_matcher,
    set_default_matcher,
    use_matcher,
)
from .odd_cycles import (
    moniwa_iterative_bipartization,
    shortest_odd_cycle,
)
from .tjoin import (
    TJoinInfeasibleError,
    is_tjoin,
    min_tjoin_brute_force,
    min_tjoin_shortest_paths,
)

__all__ = [
    "GeomGraph",
    "Edge",
    "find_crossing_pairs",
    "count_crossings",
    "greedy_planarize",
    "PlanarEmbedding",
    "build_embedding",
    "DualGraph",
    "build_dual",
    "min_weight_perfect_matching",
    "brute_force_perfect_matching",
    "is_perfect_matching",
    "NoPerfectMatchingError",
    "MatchingCertificateError",
    "MatcherBackend",
    "MATCHER_BACKENDS",
    "MATCHER_ENV",
    "DEFAULT_MATCHER",
    "make_matcher",
    "register_matcher",
    "get_matcher",
    "set_default_matcher",
    "use_matcher",
    "min_tjoin_shortest_paths",
    "min_tjoin_brute_force",
    "is_tjoin",
    "TJoinInfeasibleError",
    "GadgetGraph",
    "build_gadget_graph",
    "extract_tjoin",
    "min_tjoin_gadget",
    "two_color",
    "color_component",
    "is_bipartite",
    "residual_conflicts",
    "ParityDSU",
    "GraphComponent",
    "RecolorStats",
    "decompose",
    "component_content_id",
    "encode_coloring",
    "decode_coloring",
    "two_color_incremental",
    "ODD_COMPONENT",
    "BipartizationResult",
    "optimal_planar_bipartization",
    "greedy_spanning_tree_bipartization",
    "greedy_odd_cycle_bipartization",
    "METHOD_GADGET",
    "METHOD_PATHS",
    "shortest_odd_cycle",
    "moniwa_iterative_bipartization",
]
