"""Two-coloring and parity bookkeeping.

Every edge of a phase conflict graph means "endpoints take different
colors" (overlap constraints are expanded into two such edges through
the overlap node), so phase assignment is exactly 2-coloring.  The
parity union-find here also powers the greedy bipartization baseline and
step 3 of the detection flow.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .geomgraph import GeomGraph


class ParityDSU:
    """Union-find where every element knows its color parity to the root."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._parity: Dict[int, int] = {}
        self._rank: Dict[int, int] = {}

    def add(self, x: int) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._parity[x] = 0
            self._rank[x] = 0

    def find(self, x: int) -> Tuple[int, int]:
        """Returns (root, parity of x relative to root)."""
        self.add(x)
        path: List[int] = []
        while self._parent[x] != x:
            path.append(x)
            x = self._parent[x]
        parity = 0
        for node in reversed(path):
            parity ^= self._parity[node]
            self._parent[node] = x
            self._parity[node] = parity
        return x, self._parity[path[0]] if path else 0

    def union_unequal(self, a: int, b: int) -> bool:
        """Record "a and b have different colors".

        Returns False (and changes nothing) if that contradicts the
        constraints recorded so far, i.e. the edge would close an odd
        cycle.
        """
        ra, pa = self.find(a)
        rb, pb = self.find(b)
        if ra == rb:
            return pa != pb
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
            pa, pb = pb, pa
        self._parent[rb] = ra
        self._parity[rb] = pa ^ pb ^ 1
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


def color_component(graph: GeomGraph, start: int,
                    skip_edges: Iterable[int] = ()
                    ) -> Optional[Dict[int, int]]:
    """2-color the connected component containing ``start``.

    The canonical polarity rule of the whole coloring stack: the
    traversal root gets color 0.  Returns colors for every node
    reachable from ``start`` over live edges minus ``skip_edges``, or
    None when that component is not bipartite.

    Runs straight on the graph's CSR adjacency: a proper 2-coloring is
    unique per component up to the pinned root polarity, so traversal
    order is free and the flat arrays are walked without materializing
    :class:`~repro.graph.geomgraph.Edge` objects (this is the verify
    stage's hottest loop on chip-scale layouts).
    """
    skip = skip_edges if isinstance(skip_edges, set) else set(skip_edges)
    csr = graph.csr()
    indptr = csr.indptr
    neighbors = csr.neighbors
    edge_ids = csr.edge_ids
    index = graph._node_index
    removed = graph._removed
    if not removed:
        blocked = skip
    elif not skip:
        blocked = removed
    else:
        blocked = removed | skip
    colors: Dict[int, int] = {start: 0}
    queue = [start]
    pop = queue.pop
    push = queue.append
    get = colors.get
    while queue:
        node = pop()
        color = colors[node]
        i = index.get(node)
        if i is None:        # unknown start label: colored, no edges
            continue
        for k in range(indptr[i], indptr[i + 1]):
            if blocked and edge_ids[k] in blocked:
                continue
            nxt = neighbors[k]
            if nxt == node:      # self-loop: never 2-colorable
                return None
            seen = get(nxt)
            if seen is None:
                colors[nxt] = color ^ 1
                push(nxt)
            elif seen == color:
                return None
    return colors


def two_color(graph: GeomGraph,
              skip_edges: Iterable[int] = ()) -> Optional[Dict[int, int]]:
    """Proper 2-coloring of the live graph minus ``skip_edges``.

    Returns node -> {0, 1}, or None when the remaining graph is not
    bipartite.  Deterministic, one component at a time: each
    component's root is its minimum node id and is colored 0 — the
    same polarity :mod:`repro.graph.components` replays from cache, so
    incremental recoloring reproduces this function bit for bit.
    """
    skip = set(skip_edges)
    colors: Dict[int, int] = {}
    for start in sorted(graph.nodes):
        if start in colors:
            continue
        component = color_component(graph, start, skip)
        if component is None:
            return None
        colors.update(component)
    return colors


def is_bipartite(graph: GeomGraph,
                 skip_edges: Iterable[int] = ()) -> bool:
    return two_color(graph, skip_edges) is not None


def residual_conflicts(graph: GeomGraph, deleted: Sequence[int],
                       candidates: Sequence[int]) -> List[int]:
    """Step 3 of the paper flow: which planarization casualties matter?

    Colors the graph without ``deleted`` and ``candidates``, then re-adds
    the candidate edges — heaviest first, so expensive edges are kept
    whenever the parity structure allows — returning those that would
    close an odd cycle (the endpoints already have equal colors).  A
    parity union-find generalizes the paper's single 2-coloring: it also
    handles candidates that reconnect separate components, which a fixed
    coloring would misclassify.
    """
    deleted_set = set(deleted)
    candidate_set = set(candidates)
    dsu = ParityDSU()
    for node in graph.nodes:
        dsu.add(node)
    for eid, u, v, _w in graph.live_edge_rows():
        if eid in deleted_set or eid in candidate_set:
            continue
        if not dsu.union_unequal(u, v):
            raise ValueError(
                "graph minus deleted edges is not bipartite; "
                "bipartization output is inconsistent")

    weight = graph.edge_weight
    ordered = sorted(candidate_set, key=lambda eid: (-weight(eid), eid))
    conflicts: List[int] = []
    for eid in ordered:
        e = graph.edge(eid)
        if not dsu.union_unequal(e.u, e.v):
            conflicts.append(eid)
    return sorted(conflicts)
