"""Minimum-weight T-join (reference solver).

A *T-join* of a weighted graph G = (V, E, w) and an even-sized node set
T is an edge set J such that a node has odd J-degree iff it is in T.
With non-negative weights, the classic Edmonds–Johnson reduction solves
it optimally: compute shortest paths between all T nodes, find a
minimum-weight perfect matching on the complete graph over T with those
distances, and take the symmetric difference of the matched paths.

This module is the reference against which the paper's gadget reduction
(:mod:`repro.graph.gadgets`) is property-tested; both must return
T-joins of identical total weight.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .geomgraph import GeomGraph
from .matching import min_weight_perfect_matching


class TJoinInfeasibleError(ValueError):
    """Raised when some component contains an odd number of T nodes."""


def is_tjoin(graph: GeomGraph, edge_ids: Sequence[int], tset: Set[int]
             ) -> bool:
    """Validator: J-degree parity matches membership in T."""
    degree: Dict[int, int] = {}
    for eid in set(edge_ids):
        e = graph.edge(eid)
        if e.is_self_loop:
            degree[e.u] = degree.get(e.u, 0) + 2
        else:
            degree[e.u] = degree.get(e.u, 0) + 1
            degree[e.v] = degree.get(e.v, 0) + 1
    for node in graph.nodes:
        odd = degree.get(node, 0) % 2 == 1
        if odd != (node in tset):
            return False
    return True


def _dijkstra(graph: GeomGraph, source: int
              ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Multigraph Dijkstra; returns (dist, predecessor edge id)."""
    dist: Dict[int, int] = {source: 0}
    pred: Dict[int, int] = {}
    heap: List[Tuple[int, int]] = [(0, source)]
    done: Set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for e in graph.incident(node):
            if e.is_self_loop:
                continue
            nxt = e.other(node)
            nd = d + e.weight
            if nxt not in dist or nd < dist[nxt]:
                dist[nxt] = nd
                pred[nxt] = e.id
                heapq.heappush(heap, (nd, nxt))
    return dist, pred


def _path_edges(graph: GeomGraph, pred: Dict[int, int],
                source: int, target: int) -> List[int]:
    edges: List[int] = []
    node = target
    while node != source:
        eid = pred[node]
        edges.append(eid)
        node = graph.edge(eid).other(node)
    return edges


def check_feasible(graph: GeomGraph, tset: Set[int]) -> None:
    """Raise unless every component holds an even number of T nodes."""
    for comp in graph.connected_components():
        if len(tset.intersection(comp)) % 2 == 1:
            raise TJoinInfeasibleError(
                f"component with odd |T|: {sorted(set(comp) & tset)}")


def min_tjoin_shortest_paths(graph: GeomGraph,
                             tset: Set[int]) -> List[int]:
    """Minimum-weight T-join via the shortest-path/matching reduction.

    Requires non-negative weights.  Self-loops never enter a minimum
    T-join (they cannot change parity) and are ignored.
    """
    check_feasible(graph, tset)
    terminals = sorted(tset)
    if not terminals:
        return []

    dists: Dict[int, Dict[int, int]] = {}
    preds: Dict[int, Dict[int, int]] = {}
    for t in terminals:
        dists[t], preds[t] = _dijkstra(graph, t)

    # Complete graph over T; node ids are positions in `terminals`.
    complete = GeomGraph(name="tjoin-complete")
    for i in range(len(terminals)):
        complete.add_node(i)
    for i, ti in enumerate(terminals):
        for j in range(i + 1, len(terminals)):
            tj = terminals[j]
            if tj in dists[ti]:
                complete.add_edge(i, j, weight=dists[ti][tj])

    matched = min_weight_perfect_matching(complete)

    join: Set[int] = set()
    for eid in matched:
        e = complete.edge(eid)
        source = terminals[e.u]
        target = terminals[e.v]
        for primal_eid in _path_edges(graph, preds[source], source, target):
            join.symmetric_difference_update({primal_eid})
    return sorted(join)


def tjoin_weight(graph: GeomGraph, edge_ids: Sequence[int]) -> int:
    return graph.total_weight(edge_ids)


def min_tjoin_brute_force(graph: GeomGraph, tset: Set[int],
                          max_edges: int = 18) -> Optional[List[int]]:
    """Exhaustive minimum T-join (tests only)."""
    edges = [e for e in graph.edges() if not e.is_self_loop]
    if len(edges) > max_edges:
        raise ValueError(f"too many edges for brute force: {len(edges)}")
    best_cost: Optional[int] = None
    best: Optional[List[int]] = None
    for mask in range(1 << len(edges)):
        subset = [edges[i].id for i in range(len(edges)) if mask >> i & 1]
        cost = graph.total_weight(subset)
        if best_cost is not None and cost >= best_cost:
            continue
        if is_tjoin(graph, subset, tset):
            best_cost = cost
            best = subset
    return sorted(best) if best is not None else None
