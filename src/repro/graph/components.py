"""Connected components with content-derived ids, and incremental
2-coloring on top of them.

Phase assignment is a 2-coloring of the conflict graph, and a
2-coloring never crosses a component boundary — so the component is
the natural unit of incremental recoloring.  Each component gets a
*content id*: a hash of its geometry-anchored node set and live edge
structure that is independent of node numbering (node identity is the
node's coordinate, not its integer id).  An ECO edit that leaves a
component's geometry untouched therefore leaves its content id — and
its cached coloring — valid, even when every shifter id on the chip
shifted under it.

Colorings are cached in *canonical form*: colors listed in canonical
node order, normalized so the first canonical node has color 0.
Replay re-anchors the canonical vector onto the current node ids and
flips it so the component's minimum node id takes color 0 — exactly
the polarity :func:`repro.graph.coloring.two_color` produces (its
BFS roots are component-minimum node ids and are always colored 0).
Within a connected component a proper 2-coloring is unique up to that
flip, so a cache replay is *identical* to a cold chip-wide coloring,
not merely equivalent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .coloring import color_component
from .geomgraph import GeomGraph

# Bump when the canonical coloring encoding changes so stale cache
# directories self-invalidate.
COMPONENT_FORMAT = 1

# The value stored for a component whose subgraph is not 2-colorable.
ODD_COMPONENT = "odd"


@dataclass(frozen=True)
class GraphComponent:
    """One connected component of a graph's live-edge structure.

    Attributes:
        index: dense component index (ordered by minimum node id).
        nodes: the component's node ids, ascending.
        order: the same nodes in *canonical* order — sorted by
            coordinate when the graph has coordinates (so the order
            survives node renumbering), by id otherwise.
        content_id: hex digest of the component's content (canonical
            node keys plus edge multiset), independent of node ids
            whenever coordinates exist.
    """

    index: int
    nodes: Tuple[int, ...]
    order: Tuple[int, ...]
    content_id: str

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def min_node(self) -> int:
        return self.nodes[0]


def decompose(graph: GeomGraph) -> List[GraphComponent]:
    """The graph's live-edge components with content ids.

    Deterministic: components are ordered by minimum node id, so the
    decomposition of a given graph is reproducible across runs and
    processes.  Component discovery and the per-component edge lists
    both read the graph's flat arrays directly — no
    :class:`~repro.graph.geomgraph.Edge` objects on this path (it runs
    once per assign/verify stage over chip-scale graphs).
    """
    components = sorted(graph.connected_components(),
                        key=lambda comp: comp[0])
    node_comp: Dict[int, int] = {}
    for i, comp in enumerate(components):
        for node in comp:
            node_comp[node] = i
    edges: List[List[Tuple[int, int, int]]] = [[] for _ in components]
    for _eid, u, v, w in graph.live_edge_rows():
        edges[node_comp[u]].append((u, v, w))

    out: List[GraphComponent] = []
    for i, comp in enumerate(components):
        order = canonical_order(graph, comp)
        content = component_content_id(graph, order, edges[i])
        out.append(GraphComponent(index=i, nodes=tuple(comp),
                                  order=tuple(order), content_id=content))
    return out


def canonical_order(graph: GeomGraph, nodes: Sequence[int]) -> List[int]:
    """Nodes in content order: by coordinate (ties by id) when every
    node has one, by id otherwise.

    Coordinate order is what makes component content ids stable under
    renumbering: shifter and auxiliary nodes are renumbered
    monotonically by the front end, so equal-coordinate ties resolve
    the same way in every revision that leaves the geometry alone.
    """
    try:
        keyed = [((graph.coord(n)), n) for n in nodes]
    except KeyError:
        return sorted(nodes)
    keyed.sort()
    return [n for _, n in keyed]


def component_content_id(graph: GeomGraph, order: Sequence[int],
                         comp_edges: Sequence[Tuple[int, int, int]]
                         ) -> str:
    """Hash of a component's content in canonical-node terms.

    Nodes contribute their coordinate (or raw id without one); edges
    contribute ``(canonical u, canonical v, weight)`` as a sorted
    multiset, which preserves parallel edges and self-loops.
    """
    rank = {n: i for i, n in enumerate(order)}
    # The digest is fed in chunked sections (header, nodes, edges)
    # straight off the component's arrays: sha256 of a concatenation is
    # byte-identical however it is chunked, and this function runs once
    # per component per stage (tens of thousands of times on chip-scale
    # runs).  Coordinates are plain tuples straight off the graph's
    # dict — no dataclass introspection on this path.
    coords = graph._coords
    h = hashlib.sha256()
    h.update(f"component-format:{COMPONENT_FORMAT}".encode())
    h.update("".join(
        repr(c) if (c := coords.get(n)) is not None else f"node:{n}"
        for n in order).encode())
    keys: List[Tuple[int, int, int]] = []
    for u, v, w in comp_edges:
        ru = rank[u]
        rv = rank[v]
        keys.append((ru, rv, w) if ru <= rv else (rv, ru, w))
    keys.sort()
    h.update("".join(f"e:{a},{b},{w}" for a, b, w in keys).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Canonical coloring codec
# ----------------------------------------------------------------------
def encode_coloring(component: GraphComponent,
                    colors: Dict[int, int]) -> Tuple[int, ...]:
    """A component's colors as a canonical vector (first canonical
    node normalized to color 0)."""
    base = colors[component.order[0]]
    return tuple(colors[n] ^ base for n in component.order)


def decode_coloring(component: GraphComponent,
                    canonical: Sequence[int]) -> Dict[int, int]:
    """Re-anchor a canonical color vector onto current node ids.

    The polarity flip puts color 0 on the component's minimum node id,
    matching a cold :func:`~repro.graph.coloring.two_color` exactly.
    """
    colors = dict(zip(component.order, canonical))
    flip = colors[component.min_node]
    if flip:
        return {n: c ^ 1 for n, c in colors.items()}
    return colors


# ----------------------------------------------------------------------
# Incremental recoloring
# ----------------------------------------------------------------------
@dataclass
class RecolorStats:
    """What the incremental coloring actually did."""

    components: int = 0
    reused: int = 0                    # cache hits: colors replayed
    recolored: int = 0                 # cache misses: BFS actually ran
    dirty: List[GraphComponent] = field(default_factory=list)

    @property
    def chip_wide(self) -> bool:
        """True when every component had to be recolored."""
        return self.components > 0 and self.recolored == self.components


def two_color_incremental(graph: GeomGraph, store,
                          components: Optional[
                              Sequence[GraphComponent]] = None,
                          ) -> Tuple[Optional[Dict[int, int]], RecolorStats]:
    """Per-component 2-coloring that only recolors changed components.

    ``store`` is a :class:`repro.cache.ArtifactCache`; colorings are
    cached under the ``coloring`` kind keyed by component content id.
    A component whose node/edge content is unchanged since any earlier
    run (this process or a persisted cache directory) replays its
    canonical coloring instead of re-running BFS.

    Returns ``(colors, stats)`` where ``colors`` matches
    :func:`~repro.graph.coloring.two_color` exactly, or None when some
    component is not bipartite.  Unlike the cold path, every component
    is processed even after a failure so the cache warms completely.
    """
    from ..cache import KIND_COLORING
    from ..obs import get_tracer

    tracer = get_tracer()
    stats = RecolorStats()
    colors: Dict[int, int] = {}
    failed = False
    for component in components if components is not None \
            else decompose(graph):
        stats.components += 1
        canonical = store.get(KIND_COLORING, component.content_id)
        if canonical is None:
            stats.recolored += 1
            stats.dirty.append(component)
            # Only recomputed components get spans — replays are pure
            # cache lookups already counted by the store's metrics, and
            # span-per-replay would balloon warm full-chip traces.
            with tracer.span("component", cat="component", op="recolor",
                             component=component.content_id[:12],
                             nodes=len(component.nodes)):
                fresh = color_component(graph, component.min_node)
                canonical = (ODD_COMPONENT if fresh is None
                             else encode_coloring(component, fresh))
            store.put(KIND_COLORING, component.content_id, canonical)
        else:
            stats.reused += 1
        if canonical == ODD_COMPONENT:
            failed = True
        elif not failed:
            colors.update(decode_coloring(component, canonical))
    return (None if failed else colors), stats
