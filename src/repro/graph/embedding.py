"""Planar embedding of a crossing-free straight-line drawing.

After greedy planarization the graph drawing is a plane straight-line
graph, so its combinatorial embedding is simply the angular order of
edges around every node.  Faces are the orbits of the classic
next-dart permutation; the geometric dual and the odd-face set T fall
out of the face table.

All angle comparisons are exact (integer cross products), so the face
structure is deterministic and independent of floating-point behaviour.

The builder is array-native: darts are dense integers ``2*k + bit``
over the live-edge list, rotations come from one batch half-plane-key +
integer-cross-product ranking over *all* darts at once (numpy when
available, a scalar pass mirroring the same comparator otherwise), and
the face walk runs over a flat next-dart permutation.  The dict/tuple
views (``rotations`` / ``faces`` / ``face_of``) materialize lazily for
consumers that want them; the hot consumers (the dual builder) read the
flat arrays.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple

from .geomgraph import GeomGraph, _numpy

# A dart is a directed copy of an edge: (edge_id, 0) runs u -> v,
# (edge_id, 1) runs v -> u.
Dart = Tuple[int, int]

# Below this many darts the numpy batch sort loses to its fixed
# overhead; both paths are exactly equivalent (differential-tested).
_VECTOR_MIN_DARTS = 256


def _half(dx: int, dy: int) -> int:
    """0 for directions in [0, pi), 1 for [pi, 2*pi) — exact."""
    if dy > 0 or (dy == 0 and dx > 0):
        return 0
    return 1


def _direction_cmp(d1: Tuple[int, int], d2: Tuple[int, int]) -> int:
    """Exact counter-clockwise comparison of two nonzero directions."""
    h1 = _half(*d1)
    h2 = _half(*d2)
    if h1 != h2:
        return -1 if h1 < h2 else 1
    cross = d1[0] * d2[1] - d1[1] * d2[0]
    if cross > 0:
        return -1
    if cross < 0:
        return 1
    return 0


class PlanarEmbedding:
    """Rotation system + face table of a plane straight-line graph.

    Backed by flat dart arrays; the mapping-shaped attributes of the
    historical implementation (``rotations``, ``faces``, ``face_of``)
    are materialized on first access and cached.

    Attributes:
        graph: the underlying (crossing-free) geometric graph.
        rotations: per node, incident darts in CCW angular order.
        faces: list of faces, each a list of darts forming the boundary
            walk; a bridge contributes both of its darts to the same
            face.
        face_of: face index of every dart.
    """

    def __init__(self, graph: GeomGraph, live_edges: List[int],
                 rot: List[int], rot_indptr: List[int],
                 next_dart: List[int], dart_face: List[int],
                 face_lens: List[int], face_seeds: List[int]) -> None:
        self.graph = graph
        # Dart d encodes (live_edges[d >> 1], d & 1).
        self._live_edges = live_edges
        self._rot = rot                  # darts grouped by node, CCW
        self._rot_indptr = rot_indptr    # per dense node index
        self._next = next_dart           # face-walk successor per dart
        self._dart_face = dart_face      # face index per dart
        self._face_lens = face_lens
        self._face_seeds = face_seeds    # first dart of each face
        self._edge_pos: Optional[Dict[int, int]] = None
        self._rotations: Optional[Dict[int, List[Dart]]] = None
        self._faces: Optional[List[List[Dart]]] = None
        self._face_of: Optional[Dict[Dart, int]] = None

    # ------------------------------------------------------------------
    # Array-level queries (no dict materialization)
    # ------------------------------------------------------------------
    @property
    def num_faces(self) -> int:
        return len(self._face_lens)

    def face_length(self, face_index: int) -> int:
        return self._face_lens[face_index]

    def odd_faces(self) -> List[int]:
        """Faces with an odd boundary walk — the T set for the dual T-join.

        A (component of a) plane graph is bipartite iff it has no odd
        face, because face boundaries generate the cycle space over
        GF(2) and a bridge appears twice in its face walk (contributing
        even length).
        """
        return [i for i, n in enumerate(self._face_lens) if n % 2 == 1]

    def edge_faces(self, edge_id: int) -> Tuple[int, int]:
        """The two (possibly equal) faces bordering an edge."""
        pos = self._edge_pos
        if pos is None:
            pos = {eid: k for k, eid in enumerate(self._live_edges)}
            self._edge_pos = pos
        k = pos[edge_id]
        return (self._dart_face[2 * k], self._dart_face[2 * k + 1])

    def edge_face_columns(self) -> Tuple[List[int], List[int], List[int]]:
        """``(live edge ids, left faces, right faces)`` columns, id order.

        The dual builder's fast path: column ``k`` is
        ``edge_faces(live_edge_ids[k])`` without the per-edge lookups.
        """
        return (self._live_edges, self._dart_face[0::2],
                self._dart_face[1::2])

    def euler_check(self) -> bool:
        """V - E + F == 1 + C (Euler's formula with C components)."""
        v = self.graph.num_nodes()
        e = self.graph.num_edges()
        components = self.graph.connected_components()
        # Each component has its own unbounded face in our per-component
        # face accounting; isolated nodes contribute no face.
        c_with_edges = sum(
            1 for comp in components
            if any(True for n in comp for _ in self.graph.incident(n)))
        expected_f = e - v + len(components) + c_with_edges
        return len(self._face_lens) == expected_f

    # ------------------------------------------------------------------
    # Materialized views (lazy, for tests and exploratory callers)
    # ------------------------------------------------------------------
    def _dart_tuple(self, d: int) -> Dart:
        return (self._live_edges[d >> 1], d & 1)

    @property
    def rotations(self) -> Dict[int, List[Dart]]:
        if self._rotations is None:
            indptr = self._rot_indptr
            rot = self._rot
            live = self._live_edges
            self._rotations = {
                node: [(live[d >> 1], d & 1)
                       for d in rot[indptr[i]:indptr[i + 1]]]
                for i, node in enumerate(self.graph.nodes)}
        return self._rotations

    @property
    def faces(self) -> List[List[Dart]]:
        if self._faces is None:
            nxt = self._next
            live = self._live_edges
            faces: List[List[Dart]] = []
            for seed in self._face_seeds:
                walk = [(live[seed >> 1], seed & 1)]
                cur = nxt[seed]
                while cur != seed:
                    walk.append((live[cur >> 1], cur & 1))
                    cur = nxt[cur]
                faces.append(walk)
            self._faces = faces
        return self._faces

    @property
    def face_of(self) -> Dict[Dart, int]:
        if self._face_of is None:
            live = self._live_edges
            self._face_of = {
                (live[d >> 1], d & 1): f
                for d, f in enumerate(self._dart_face)}
        return self._face_of


def build_embedding(graph: GeomGraph) -> PlanarEmbedding:
    """Compute rotations and faces of a crossing-free drawing.

    Requires coordinates on every node and no self-loops; callers run
    :func:`repro.graph.crossings.greedy_planarize` first, which also
    guarantees no two darts at a node share a direction.
    """
    removed = graph._removed
    n_edges = len(graph._eu)
    if removed:
        live = [eid for eid in range(n_edges) if eid not in removed]
    else:
        live = list(range(n_edges))
    eu, ev = graph._eu, graph._ev
    for eid in live:
        if eu[eid] == ev[eid]:
            raise ValueError("embedding does not support self-loops")

    np = _numpy() if 2 * len(live) >= _VECTOR_MIN_DARTS else None
    if np is not None:
        rot, rot_indptr, next_dart = _rotation_arrays_numpy(graph, live, np)
    else:
        rot, rot_indptr, next_dart = _rotation_arrays_scalar(graph, live)

    # Face orbits.  Seeds scan the rotation array in order — nodes in
    # insertion order, darts CCW within a node — reproducing the
    # historical face enumeration (and with it every dual node id).
    dart_face = [-1] * (2 * len(live))
    face_lens: List[int] = []
    face_seeds: List[int] = []
    for seed in rot:
        if dart_face[seed] != -1:
            continue
        face = len(face_lens)
        face_seeds.append(seed)
        dart_face[seed] = face
        length = 1
        cur = next_dart[seed]
        while cur != seed:
            dart_face[cur] = face
            length += 1
            cur = next_dart[cur]
        face_lens.append(length)

    return PlanarEmbedding(graph=graph, live_edges=live, rot=rot,
                           rot_indptr=rot_indptr, next_dart=next_dart,
                           dart_face=dart_face, face_lens=face_lens,
                           face_seeds=face_seeds)


def _rotation_arrays_numpy(graph: GeomGraph, live: List[int], np):
    """Batch CCW rotation build over all darts at once.

    Per-dart half-plane keys plus exact int64 cross products rank every
    dart within its origin's rotation in one vectorized pass (degrees
    in planarized conflict graphs are small, so the per-node all-pairs
    comparison count stays linear in practice); the next-dart
    permutation then falls out of pure array arithmetic.
    """
    xs, ys = graph.coord_arrays(np)
    ui_all, vi_all = graph._dense_endpoints(np)
    le = np.array(live, dtype=np.int64)
    ui = ui_all[le]
    vi = vi_all[le]
    n_darts = 2 * len(live)

    # Dart d = 2*k + bit: origin/target dense node indices.
    origin = np.empty(n_darts, dtype=np.int64)
    target = np.empty(n_darts, dtype=np.int64)
    origin[0::2] = ui
    origin[1::2] = vi
    target[0::2] = vi
    target[1::2] = ui
    dx = xs[target] - xs[origin]
    dy = ys[target] - ys[origin]
    half = ((dy < 0) | ((dy == 0) & (dx < 0))).astype(np.int8)

    # Group darts by origin node.
    n_nodes = graph.num_nodes()
    counts = np.bincount(origin, minlength=n_nodes)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(origin, kind="stable")

    # All intra-node dart pairs (i < j in grouped position): the
    # blocked repeat/arange construction of the geometry kernels.
    grouped_origin = origin[order]
    local = np.arange(n_darts, dtype=np.int64) - indptr[grouped_origin]
    reps = counts[grouped_origin] - 1 - local
    pair_i = np.repeat(np.arange(n_darts, dtype=np.int64), reps)
    block_start = np.repeat(np.cumsum(reps) - reps, reps)
    pair_j = pair_i + 1 + (np.arange(len(pair_i), dtype=np.int64)
                           - block_start)

    gh = half[order]
    gdx = dx[order]
    gdy = dy[order]
    hi, hj = gh[pair_i], gh[pair_j]
    cross = gdx[pair_i] * gdy[pair_j] - gdy[pair_i] * gdx[pair_j]
    # "i before j" in CCW order, the vectorized twin of _direction_cmp.
    # Planarization guarantees no equal directions at a node, but a
    # hypothetical tie (cross == 0, same half) keeps the lower dart id
    # first — matching the stable comparison sort of the scalar path.
    i_first = (hi < hj) | ((hi == hj) & (cross >= 0))
    rank = np.bincount(np.where(i_first, pair_j, pair_i),
                       minlength=n_darts)

    # CCW rotation array: stable refinement of the origin grouping by
    # rank.  pos is its inverse permutation (global slot per dart).
    rot = order[np.lexsort((rank, grouped_origin))]
    pos = np.empty(n_darts, dtype=np.int64)
    pos[rot] = np.arange(n_darts, dtype=np.int64)

    # Face-walk successor: reverse the dart, then step clockwise in the
    # reverse dart's ring.
    reverse = np.arange(n_darts, dtype=np.int64) ^ 1
    head = origin[reverse]
    start = indptr[head]
    size = counts[head]
    next_dart = rot[start + (pos[reverse] - start - 1) % size]

    return rot.tolist(), indptr.tolist(), next_dart.tolist()


def _rotation_arrays_scalar(graph: GeomGraph, live: List[int]):
    """Per-node comparison sort; exactly equivalent to the batch pass."""
    eu, ev = graph._eu, graph._ev
    index = graph._node_index
    coords = graph._coords

    # Incident darts per dense node index, in ascending edge-id order
    # (matching the CSR dart order the numpy pass groups by).
    incident: List[List[int]] = [[] for _ in range(graph.num_nodes())]
    for k, eid in enumerate(live):
        incident[index[eu[eid]]].append(2 * k)
        incident[index[ev[eid]]].append(2 * k + 1)

    rot: List[int] = []
    rot_indptr = [0]
    pos = [0] * (2 * len(live))
    dart_origin: List[int] = [0] * (2 * len(live))
    for node in graph.nodes:
        i = index[node]
        darts = incident[i]
        ox, oy = coords[node]
        dirs: Dict[int, Tuple[int, int]] = {}
        for d in darts:
            eid = live[d >> 1]
            other = ev[eid] if d & 1 == 0 else eu[eid]
            tx, ty = coords[other]
            dirs[d] = (tx - ox, ty - oy)
            dart_origin[d] = i
        darts.sort(key=functools.cmp_to_key(
            lambda a, b: _direction_cmp(dirs[a], dirs[b])))
        for d in darts:
            pos[d] = len(rot)
            rot.append(d)
        rot_indptr.append(len(rot))

    next_dart = [0] * (2 * len(live))
    for d in range(2 * len(live)):
        reverse = d ^ 1
        head = dart_origin[reverse]
        ring_start = rot_indptr[head]
        ring_len = rot_indptr[head + 1] - ring_start
        local = pos[reverse] - ring_start
        next_dart[d] = rot[ring_start + (local - 1) % ring_len]
    return rot, rot_indptr, next_dart
