"""Planar embedding of a crossing-free straight-line drawing.

After greedy planarization the graph drawing is a plane straight-line
graph, so its combinatorial embedding is simply the angular order of
edges around every node.  Faces are the orbits of the classic
next-dart permutation; the geometric dual and the odd-face set T fall
out of the face table.

All angle comparisons are exact (integer cross products), so the face
structure is deterministic and independent of floating-point behaviour.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .geomgraph import GeomGraph

# A dart is a directed copy of an edge: (edge_id, 0) runs u -> v,
# (edge_id, 1) runs v -> u.
Dart = Tuple[int, int]


def _half(dx: int, dy: int) -> int:
    """0 for directions in [0, pi), 1 for [pi, 2*pi) — exact."""
    if dy > 0 or (dy == 0 and dx > 0):
        return 0
    return 1


def _direction_cmp(d1: Tuple[int, int], d2: Tuple[int, int]) -> int:
    """Exact counter-clockwise comparison of two nonzero directions."""
    h1 = _half(*d1)
    h2 = _half(*d2)
    if h1 != h2:
        return -1 if h1 < h2 else 1
    cross = d1[0] * d2[1] - d1[1] * d2[0]
    if cross > 0:
        return -1
    if cross < 0:
        return 1
    return 0


@dataclass
class PlanarEmbedding:
    """Rotation system + face table of a plane straight-line graph.

    Attributes:
        graph: the underlying (crossing-free) geometric graph.
        rotations: per node, incident darts in CCW angular order.
        faces: list of faces, each a list of darts forming the boundary
            walk; a bridge contributes both of its darts to the same
            face.
        face_of: face index of every dart.
    """

    graph: GeomGraph
    rotations: Dict[int, List[Dart]]
    faces: List[List[Dart]]
    face_of: Dict[Dart, int]

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    def face_length(self, face_index: int) -> int:
        return len(self.faces[face_index])

    def odd_faces(self) -> List[int]:
        """Faces with an odd boundary walk — the T set for the dual T-join.

        A (component of a) plane graph is bipartite iff it has no odd
        face, because face boundaries generate the cycle space over
        GF(2) and a bridge appears twice in its face walk (contributing
        even length).
        """
        return [i for i, f in enumerate(self.faces) if len(f) % 2 == 1]

    def edge_faces(self, edge_id: int) -> Tuple[int, int]:
        """The two (possibly equal) faces bordering an edge."""
        return (self.face_of[(edge_id, 0)], self.face_of[(edge_id, 1)])

    def euler_check(self) -> bool:
        """V - E + F == 1 + C (Euler's formula with C components)."""
        v = self.graph.num_nodes()
        e = self.graph.num_edges()
        components = self.graph.connected_components()
        # Each component has its own unbounded face in our per-component
        # face accounting; isolated nodes contribute no face.
        c_with_edges = sum(
            1 for comp in components
            if any(True for n in comp for _ in self.graph.incident(n)))
        expected_f = e - v + len(components) + c_with_edges
        return len(self.faces) == expected_f


def build_embedding(graph: GeomGraph) -> PlanarEmbedding:
    """Compute rotations and faces of a crossing-free drawing.

    Requires coordinates on every node and no self-loops; callers run
    :func:`repro.graph.crossings.greedy_planarize` first, which also
    guarantees no two darts at a node share a direction.
    """
    rotations: Dict[int, List[Dart]] = {}
    for node in graph.nodes:
        darts: List[Dart] = []
        # Directions are computed once per dart, not inside the
        # comparator — cmp_to_key evaluates it O(d log d) times per
        # rotation otherwise.
        dirs: Dict[Dart, Tuple[int, int]] = {}
        ox, oy = graph.coord(node)
        for e in graph.incident(node):
            if e.is_self_loop:
                raise ValueError("embedding does not support self-loops")
            dart = (e.id, 0 if e.u == node else 1)
            tx, ty = graph.coord(e.other(node))
            darts.append(dart)
            dirs[dart] = (tx - ox, ty - oy)

        darts.sort(key=functools.cmp_to_key(
            lambda a, b: _direction_cmp(dirs[a], dirs[b])))
        rotations[node] = darts

    # Position of each dart within its origin's rotation.
    position: Dict[Dart, int] = {}
    for node, darts in rotations.items():
        for i, dart in enumerate(darts):
            position[dart] = i

    def next_dart(dart: Dart) -> Dart:
        """Face-walk successor: reverse the dart, then step clockwise."""
        edge_id, direction_bit = dart
        reverse = (edge_id, 1 - direction_bit)
        e = graph.edge(edge_id)
        head = e.v if direction_bit == 0 else e.u
        ring = rotations[head]
        i = position[reverse]
        return ring[(i - 1) % len(ring)]

    faces: List[List[Dart]] = []
    face_of: Dict[Dart, int] = {}
    for node in graph.nodes:
        for start in rotations[node]:
            if start in face_of:
                continue
            walk = [start]
            face_of[start] = len(faces)
            cur = next_dart(start)
            while cur != start:
                face_of[cur] = len(faces)
                walk.append(cur)
                cur = next_dart(cur)
            faces.append(walk)

    return PlanarEmbedding(graph=graph, rotations=rotations,
                           faces=faces, face_of=face_of)
