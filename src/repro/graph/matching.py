"""Minimum-weight perfect matching.

The production path wraps networkx's blossom implementation (the one
piece of graph machinery we do not re-derive — the paper treats the
matcher as a black box too, citing off-the-shelf solvers).  A brute-force
exact matcher validates it on small graphs in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from .geomgraph import GeomGraph


class NoPerfectMatchingError(ValueError):
    """Raised when the graph admits no perfect matching."""


def min_weight_perfect_matching(graph: GeomGraph) -> List[int]:
    """Edge ids of a minimum-weight perfect matching.

    Parallel edges are collapsed to the cheapest representative (a more
    expensive parallel edge can never appear in a minimum matching) and
    self-loops are ignored (they can never be matched).  The problem
    decomposes over connected components, and blossom is cubic-ish, so
    each component is matched separately — a large win on the highly
    fragmented gadget graphs the detection flow produces.
    """
    n = graph.num_nodes()
    if n % 2 == 1:
        raise NoPerfectMatchingError(f"odd node count {n}")
    if n == 0:
        return []

    best: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for e in graph.edges():
        if e.is_self_loop:
            continue
        key = (min(e.u, e.v), max(e.u, e.v))
        if key not in best or e.weight < best[key][0]:
            best[key] = (e.weight, e.id)

    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    if best:
        max_w = max(w for w, _ in best.values())
        for (u, v), (w, eid) in best.items():
            # Max-weight max-cardinality matching on (max_w + 1 - w)
            # is min-weight perfect matching on w, because all perfect
            # matchings have the same cardinality.
            g.add_edge(u, v, weight=max_w + 1 - w, eid=eid)

    matched: List[int] = []
    for component in nx.connected_components(g):
        if len(component) % 2 == 1:
            raise NoPerfectMatchingError(
                f"odd component of {len(component)} nodes")
        # Materialize the component: blossom on a subgraph *view* pays
        # a filter-wrapper call on every adjacency access (millions on
        # chip-scale graphs).  ``copy()`` walks the view once, in the
        # parent graph's iteration order, so the concrete graph
        # presents nodes and edges to the matcher in exactly the same
        # sequence — identical matchings, view or copy.
        sub = g.subgraph(component).copy()
        mate = nx.max_weight_matching(sub, maxcardinality=True)
        if 2 * len(mate) != len(component):
            raise NoPerfectMatchingError(
                f"matched {2 * len(mate)} of {len(component)} nodes "
                "in a component")
        matched.extend(sub[u][v]["eid"] for u, v in mate)
    return sorted(matched)


def brute_force_perfect_matching(graph: GeomGraph) -> Optional[List[int]]:
    """Exact min-weight perfect matching by recursion (tests only).

    Returns None when no perfect matching exists.  Exponential — keep it
    under ~12 nodes.
    """
    nodes = sorted(graph.nodes)
    if len(nodes) % 2 == 1:
        return None
    adj: Dict[int, List[Tuple[int, int, int]]] = {v: [] for v in nodes}
    for e in graph.edges():
        if e.is_self_loop:
            continue
        adj[e.u].append((e.v, e.weight, e.id))
        adj[e.v].append((e.u, e.weight, e.id))

    best_cost: List[Optional[int]] = [None]
    best_edges: List[List[int]] = [[]]

    def solve(remaining: frozenset, cost: int, chosen: List[int]) -> None:
        if not remaining:
            if best_cost[0] is None or cost < best_cost[0]:
                best_cost[0] = cost
                best_edges[0] = list(chosen)
            return
        if best_cost[0] is not None and cost >= best_cost[0]:
            return
        v = min(remaining)
        for u, w, eid in adj[v]:
            if u in remaining and u != v:
                chosen.append(eid)
                solve(remaining - {v, u}, cost + w, chosen)
                chosen.pop()

    solve(frozenset(nodes), 0, [])
    if best_cost[0] is None:
        return None
    return sorted(best_edges[0])


def matching_weight(graph: GeomGraph, edge_ids: List[int]) -> int:
    return graph.total_weight(edge_ids)


def is_perfect_matching(graph: GeomGraph, edge_ids: List[int]) -> bool:
    """Validator: every node covered exactly once."""
    seen = set()
    for eid in edge_ids:
        e = graph.edge(eid)
        if e.u in seen or e.v in seen or e.is_self_loop:
            return False
        seen.add(e.u)
        seen.add(e.v)
    return len(seen) == graph.num_nodes()
