"""Minimum-weight perfect matching behind pluggable matcher backends.

The T-join gadget reduction hands this module the single hottest
sub-problem of the whole flow (the paper treats the matcher as a
black-box solver, and so did this repo until the profile said
otherwise — see ``benchmarks/BENCH_profile_D8.json``).  Matcher choice
is now a *backend registry* mirroring the geometry-kernel and executor
idioms:

``blossom`` (default)
    The dedicated integer-weight flat-array solver in
    :mod:`repro.graph.blossom`, with a post-solve integer dual
    certificate on every component.

``networkx``
    The historical networkx wrapper, kept as the independent
    cross-check (and the only piece that needs networkx — installed
    via the ``repro[nx]`` extra).

``brute``
    Exponential exact search — the oracle for differential tests.
    Never use it beyond ~12-node components.

Every backend is an *exact* solver, and the detection flow's weights
are generically tie-free, so the reported T-joins — and therefore all
flow reports and all six cached artifact kinds — are identical under
every backend.  Matcher choice is deliberately **not** part of any
cache key for exactly that reason.

Selection is ambient like kernels: :func:`get_matcher` returns the
thread-local override (:func:`use_matcher`) or the process default
seeded from ``$REPRO_MATCHER``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple, Union

from ..obs import get_tracer
from .blossom import MatchingCertificateError, max_weight_matching
from .geomgraph import GeomGraph

#: One component's collapsed edge: (local u, local v, min-weight).
LocalEdge = Tuple[int, int, int]

DEFAULT_MATCHER = "blossom"

#: Environment variable that seeds the process-default matcher, so
#: whole test suites can run under an alternate backend unchanged.
MATCHER_ENV = "REPRO_MATCHER"


class NoPerfectMatchingError(ValueError):
    """Raised when the graph admits no perfect matching."""


class MatcherBackend:
    """One exact minimum-weight perfect matching engine.

    The driver (:func:`min_weight_perfect_matching`) collapses
    parallel edges, splits the graph into connected components, and
    calls :meth:`match` once per component with dense local node ids.
    The contract is exactness: return *a* minimum-weight perfect
    matching of the component (all backends agree on the weight; on
    the tie-free graphs the flow produces they agree on the matching).
    """

    name = "abstract"

    def match(self, nvertex: int, edges: Sequence[LocalEdge],
              transform: int) -> Tuple[List[int], int]:
        """Match one connected component.

        Args:
            nvertex: local node ids are ``0..nvertex-1`` (even).
            edges: collapsed component edges ``(u, v, weight)``.
            transform: the constant ``C`` such that max-weight
                max-cardinality matching on ``C - weight`` equals
                min-weight perfect matching on ``weight`` (all perfect
                matchings have ``nvertex/2`` edges, so any ``C`` works;
                the driver picks ``global_max_weight + 1`` to keep
                transformed weights positive).

        Returns:
            ``(positions, phases)``: indices into ``edges`` of the
            matched edges, and a work counter (augmentation stages; 0
            when the backend does not report one).  Return fewer than
            ``nvertex/2`` positions when no perfect matching exists —
            the driver raises :class:`NoPerfectMatchingError`.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MatcherBackend {self.name}>"


class BlossomMatcher(MatcherBackend):
    """The native flat-array integer blossom solver (certified)."""

    name = "blossom"

    def match(self, nvertex: int, edges: Sequence[LocalEdge],
              transform: int) -> Tuple[List[int], int]:
        mate_edge, stages = max_weight_matching(
            nvertex, [(u, v, transform - w) for (u, v, w) in edges],
            maxcardinality=True, certify=True)
        positions = sorted({k for k in mate_edge if k != -1})
        return positions, stages


class NetworkxMatcher(MatcherBackend):
    """The historical networkx blossom wrapper (cross-check backend)."""

    name = "networkx"

    def match(self, nvertex: int, edges: Sequence[LocalEdge],
              transform: int) -> Tuple[List[int], int]:
        try:
            import networkx as nx
        except ImportError as exc:
            raise ImportError(
                "the 'networkx' matcher backend requires networkx "
                "(pip install repro-aapsm[nx]); the default 'blossom' "
                "backend needs no extras") from exc
        g = nx.Graph()
        g.add_nodes_from(range(nvertex))
        for pos, (u, v, w) in enumerate(edges):
            g.add_edge(u, v, weight=transform - w, pos=pos)
        mate = nx.max_weight_matching(g, maxcardinality=True)
        return sorted(g[u][v]["pos"] for u, v in mate), 0


class BruteMatcher(MatcherBackend):
    """Exponential exact search — the differential-test oracle."""

    name = "brute"

    def match(self, nvertex: int, edges: Sequence[LocalEdge],
              transform: int) -> Tuple[List[int], int]:
        adj: List[List[Tuple[int, int, int]]] = [[] for _ in range(nvertex)]
        for pos, (u, v, w) in enumerate(edges):
            adj[u].append((v, w, pos))
            adj[v].append((u, w, pos))
        best_cost: List[Optional[int]] = [None]
        best_pos: List[List[int]] = [[]]

        def solve(remaining: frozenset, cost: int,
                  chosen: List[int]) -> None:
            if not remaining:
                if best_cost[0] is None or cost < best_cost[0]:
                    best_cost[0] = cost
                    best_pos[0] = list(chosen)
                return
            if best_cost[0] is not None and cost >= best_cost[0]:
                return
            v = min(remaining)
            for u, w, pos in adj[v]:
                if u in remaining and u != v:
                    chosen.append(pos)
                    solve(remaining - {v, u}, cost + w, chosen)
                    chosen.pop()

        solve(frozenset(range(nvertex)), 0, [])
        if best_cost[0] is None:
            return [], 0
        return sorted(best_pos[0]), 0


# ----------------------------------------------------------------------
# Registry (name -> factory), mirroring the kernel/executor registries.
# ----------------------------------------------------------------------

MATCHER_BACKENDS: Dict[str, Callable[[], MatcherBackend]] = {
    "blossom": BlossomMatcher,
    "networkx": NetworkxMatcher,
    "brute": BruteMatcher,
}


def register_matcher(name: str,
                     factory: Callable[[], MatcherBackend]) -> None:
    """Register (or replace) a matcher backend under ``name``."""
    MATCHER_BACKENDS[name] = factory


def make_matcher(name: str) -> MatcherBackend:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` listing the known backends for unknown names,
    so CLI validation errors are self-describing.
    """
    try:
        factory = MATCHER_BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(MATCHER_BACKENDS))
        raise ValueError(
            f"unknown matcher backend {name!r} (known: {known})") from None
    return factory()


# ----------------------------------------------------------------------
# Ambient matcher selection: thread-local override over a process
# default (same shape as repro.geometry.kernels).
# ----------------------------------------------------------------------

_local = threading.local()
_default_lock = threading.Lock()
_default: Optional[MatcherBackend] = None


def _process_default() -> MatcherBackend:
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = make_matcher(
                    os.environ.get(MATCHER_ENV, DEFAULT_MATCHER))
    return _default


def set_default_matcher(name: Optional[str]) -> None:
    """Set (or with ``None``, reset to env/blossom) the process default."""
    global _default
    with _default_lock:
        _default = None if name is None else make_matcher(name)


def get_matcher() -> MatcherBackend:
    """The active matcher: thread-local override, else process default."""
    matcher = getattr(_local, "matcher", None)
    if matcher is not None:
        return matcher
    return _process_default()


@contextmanager
def use_matcher(matcher: Union[MatcherBackend, str, None]
                ) -> Iterator[MatcherBackend]:
    """Scope the active matcher for the current thread.

    Accepts a backend name, a backend instance, or ``None`` (inherit
    the ambient matcher — lets config plumbing pass its ``matcher``
    field through unconditionally).
    """
    if matcher is None:
        resolved = get_matcher()
    elif isinstance(matcher, str):
        resolved = make_matcher(matcher)
    else:
        resolved = matcher
    prev = getattr(_local, "matcher", None)
    _local.matcher = resolved
    try:
        yield resolved
    finally:
        _local.matcher = prev


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------

def min_weight_perfect_matching(
        graph: GeomGraph,
        matcher: Union[MatcherBackend, str, None] = None) -> List[int]:
    """Edge ids of a minimum-weight perfect matching.

    Parallel edges are collapsed to the cheapest representative (a more
    expensive parallel edge can never appear in a minimum matching) and
    self-loops are ignored (they can never be matched).  The problem
    decomposes over connected components, and blossom is super-linear,
    so each component is matched separately — a large win on the highly
    fragmented gadget graphs the detection flow produces.

    ``matcher`` selects the backend (name, instance, or ``None`` for
    the ambient selection — ``use_matcher`` / ``$REPRO_MATCHER`` /
    the ``blossom`` default).
    """
    n = graph.num_nodes()
    if n % 2 == 1:
        raise NoPerfectMatchingError(f"odd node count {n}")
    if n == 0:
        return []

    if matcher is None:
        backend = get_matcher()
    elif isinstance(matcher, str):
        backend = make_matcher(matcher)
    else:
        backend = matcher

    t0 = time.perf_counter()

    best: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for eid, u, v, w in graph.live_edge_rows():
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        prev = best.get(key)
        if prev is None or w < prev[0]:
            best[key] = (w, eid)

    # Union-find over the collapsed edges; isolated nodes stay their
    # own (odd) components, exactly like the historical nx path.
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = parent[x]
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    nodes = graph.nodes
    for v in nodes:
        parent[v] = v
    for (u, v) in best:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[rv] = ru

    # Group nodes per component, preserving graph insertion order (the
    # networkx backend's tie-breaking sees nodes and edges in the same
    # relative order the historical code presented them).
    comp_nodes: Dict[int, List[int]] = {}
    for v in nodes:
        comp_nodes.setdefault(find(v), []).append(v)
    comp_edges: Dict[int, List[Tuple[int, int, int, int]]] = {}
    for (u, v), (w, eid) in best.items():
        comp_edges.setdefault(find(u), []).append((u, v, w, eid))

    # Any constant beats the max weight; +1 keeps transformed weights
    # positive.  Global (not per-component) to match the historical
    # reduction exactly.
    transform = (max(w for w, _ in best.values()) + 1) if best else 1

    matched: List[int] = []
    phases = 0
    for root, members in comp_nodes.items():
        if len(members) % 2 == 1:
            raise NoPerfectMatchingError(
                f"odd component of {len(members)} nodes")
        local = {v: i for i, v in enumerate(members)}
        rows = comp_edges.get(root, [])
        edges: List[LocalEdge] = [(local[u], local[v], w)
                                  for (u, v, w, _eid) in rows]
        positions, comp_phases = backend.match(len(members), edges,
                                               transform)
        phases += comp_phases
        if 2 * len(positions) != len(members):
            raise NoPerfectMatchingError(
                f"matched {2 * len(positions)} of {len(members)} nodes "
                "in a component")
        matched.extend(rows[pos][3] for pos in positions)

    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("matcher.components", len(comp_nodes))
        tracer.count("matcher.nodes", n)
        tracer.count("matcher.phases", phases)
        tracer.count("matcher.seconds", time.perf_counter() - t0)
    return sorted(matched)


def brute_force_perfect_matching(graph: GeomGraph) -> Optional[List[int]]:
    """Exact min-weight perfect matching by recursion (tests only).

    Returns None when no perfect matching exists.  Exponential — keep it
    under ~12 nodes.
    """
    nodes = sorted(graph.nodes)
    if len(nodes) % 2 == 1:
        return None
    adj: Dict[int, List[Tuple[int, int, int]]] = {v: [] for v in nodes}
    for e in graph.edges():
        if e.is_self_loop:
            continue
        adj[e.u].append((e.v, e.weight, e.id))
        adj[e.v].append((e.u, e.weight, e.id))

    best_cost: List[Optional[int]] = [None]
    best_edges: List[List[int]] = [[]]

    def solve(remaining: frozenset, cost: int, chosen: List[int]) -> None:
        if not remaining:
            if best_cost[0] is None or cost < best_cost[0]:
                best_cost[0] = cost
                best_edges[0] = list(chosen)
            return
        if best_cost[0] is not None and cost >= best_cost[0]:
            return
        v = min(remaining)
        for u, w, eid in adj[v]:
            if u in remaining and u != v:
                chosen.append(eid)
                solve(remaining - {v, u}, cost + w, chosen)
                chosen.pop()

    solve(frozenset(nodes), 0, [])
    if best_cost[0] is None:
        return None
    return sorted(best_edges[0])


def matching_weight(graph: GeomGraph, edge_ids: List[int]) -> int:
    return graph.total_weight(edge_ids)


def is_perfect_matching(graph: GeomGraph, edge_ids: List[int]) -> bool:
    """Validator: every node covered exactly once."""
    seen = set()
    for eid in edge_ids:
        e = graph.edge(eid)
        if e.u in seen or e.v in seen or e.is_self_loop:
            return False
        seen.add(e.u)
        seen.add(e.v)
    return len(seen) == graph.num_nodes()


__all__ = [
    "DEFAULT_MATCHER",
    "MATCHER_BACKENDS",
    "MATCHER_ENV",
    "MatcherBackend",
    "MatchingCertificateError",
    "NoPerfectMatchingError",
    "BlossomMatcher",
    "BruteMatcher",
    "NetworkxMatcher",
    "brute_force_perfect_matching",
    "get_matcher",
    "is_perfect_matching",
    "make_matcher",
    "matching_weight",
    "min_weight_perfect_matching",
    "register_matcher",
    "set_default_matcher",
    "use_matcher",
]
