"""Odd-cycle utilities and the Moniwa-style iterative baseline.

Moniwa et al. (JJAP'95, the paper's reference [4]) eliminate phase
conflicts by enumerating odd cycles and deleting edges one at a time.
We implement the spirit of that heuristic — repeatedly find a shortest
odd cycle and delete its cheapest edge — as a historical baseline for
the ablation benches, plus the odd-cycle search primitives the tests
use to characterise workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .geomgraph import GeomGraph


def shortest_odd_cycle(graph: GeomGraph) -> Optional[List[int]]:
    """Edge ids of a minimum-edge-count odd cycle, or None if bipartite.

    BFS on the bipartite double cover from every node: reaching
    ``(start, parity=1)`` certifies an odd closed walk through
    ``start``; the shortest such walk is an odd cycle.  O(V * E) —
    plenty for workload characterisation.
    """
    best: Optional[List[int]] = None
    for start in sorted(graph.nodes):
        cycle = _odd_walk_from(graph, start)
        if cycle is not None and (best is None or len(cycle) < len(best)):
            best = cycle
            if len(best) == 1:
                break
    return best


def _odd_walk_from(graph: GeomGraph, start: int) -> Optional[List[int]]:
    # State: (node, parity); parent pointers reconstruct the walk.
    parent: Dict[Tuple[int, int], Tuple[Tuple[int, int], int]] = {}
    source = (start, 0)
    parent[source] = (source, -1)
    frontier = [source]
    while frontier:
        nxt_frontier = []
        for node, parity in frontier:
            for e in graph.incident(node):
                if e.is_self_loop:
                    if node == start:
                        return [e.id]
                    continue
                state = (e.other(node), parity ^ 1)
                if state not in parent:
                    parent[state] = ((node, parity), e.id)
                    if state == (start, 1):
                        return _walk_edges(parent, state)
                    nxt_frontier.append(state)
        frontier = nxt_frontier
    return None


def _walk_edges(parent, state) -> List[int]:
    edges: List[int] = []
    while parent[state][1] != -1:
        prev, eid = parent[state]
        edges.append(eid)
        state = prev
    return edges


def count_odd_faces_upper_bound(graph: GeomGraph) -> int:
    """Cheap non-bipartiteness score: number of odd cycles found while
    peeling (diagnostics only)."""
    peeled = GeomGraph(name="peel")
    for node in graph.nodes:
        peeled.add_node(node, None)
    for e in graph.edges():
        peeled.add_edge(e.u, e.v, e.weight)
    count = 0
    while True:
        cycle = shortest_odd_cycle(peeled)
        if cycle is None:
            return count
        victim = min(cycle, key=lambda eid: (peeled.edge(eid).weight, eid))
        peeled.remove_edge(victim)
        count += 1


def moniwa_iterative_bipartization(graph: GeomGraph) -> List[int]:
    """Historical baseline: delete the cheapest edge of a shortest odd
    cycle until the graph is bipartite.  Returns removed edge ids
    (operates on a scratch copy; the input graph is untouched)."""
    scratch = GeomGraph(name=f"{graph.name}#moniwa")
    for node in graph.nodes:
        scratch.add_node(node, None)
    id_map: Dict[int, int] = {}
    for e in graph.edges():
        new = scratch.add_edge(e.u, e.v, e.weight)
        id_map[new.id] = e.id
    removed: List[int] = []
    while True:
        cycle = shortest_odd_cycle(scratch)
        if cycle is None:
            return sorted(removed)
        victim = min(cycle, key=lambda eid: (scratch.edge(eid).weight, eid))
        scratch.remove_edge(victim)
        removed.append(id_map[victim])
