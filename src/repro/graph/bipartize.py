"""Graph bipartization algorithms.

Three families, matching the paper's Table 1 columns:

* :func:`optimal_planar_bipartization` — the paper's *Bipartize*:
  embedded planar graph → geometric dual → minimum T-join (via the
  generalized-gadget matching reduction or the reference shortest-path
  reduction) → minimum-weight edge set whose removal kills every odd
  face, hence every odd cycle.
* :func:`greedy_spanning_tree_bipartization` — the paper's GB baseline,
  implemented literally: keep a maximum-weight spanning forest, report
  every leftover edge as a conflict.
* :func:`greedy_odd_cycle_bipartization` — a fairer greedy (our
  ablation): keep any edge that does not close an odd cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .coloring import ParityDSU, is_bipartite
from .dual import build_dual
from .embedding import build_embedding
from .gadgets import min_tjoin_gadget
from .geomgraph import GeomGraph
from .tjoin import min_tjoin_shortest_paths

METHOD_GADGET = "gadget"
METHOD_PATHS = "paths"


@dataclass
class BipartizationResult:
    """Outcome of a bipartization run.

    Attributes:
        removed: primal edge ids whose deletion makes the graph bipartite.
        weight: total weight of the removed edges.
        method: algorithm identifier for reporting.
    """

    removed: List[int]
    weight: int
    method: str

    @property
    def num_conflicts(self) -> int:
        return len(self.removed)


def optimal_planar_bipartization(
        graph: GeomGraph,
        method: str = METHOD_GADGET,
        max_clique_size: Optional[int] = None,
        verify: bool = True) -> BipartizationResult:
    """Minimum-weight bipartization of an embedded planar graph.

    ``graph`` must be a crossing-free straight-line drawing (run
    :func:`repro.graph.crossings.greedy_planarize` first).  ``method``
    selects the T-join engine; ``max_clique_size`` configures the
    gadget decomposition (None = generalized gadget, 1 = optimized
    gadgets of ASP-DAC'01).
    """
    embedding = build_embedding(graph)
    dual = build_dual(embedding)
    if method == METHOD_GADGET:
        join = min_tjoin_gadget(dual.graph, dual.tset, max_clique_size)
    elif method == METHOD_PATHS:
        join = min_tjoin_shortest_paths(dual.graph, dual.tset)
    else:
        raise ValueError(f"unknown T-join method {method!r}")
    removed = dual.primal_edges(join)
    if verify and not is_bipartite(graph, skip_edges=removed):
        raise AssertionError(
            "bipartization invariant violated: residual graph has an "
            "odd cycle")
    return BipartizationResult(
        removed=removed,
        weight=graph.total_weight(removed),
        method=f"{method}" if max_clique_size is None
        else f"{method}/clique<={max_clique_size}",
    )


def greedy_spanning_tree_bipartization(graph: GeomGraph
                                       ) -> BipartizationResult:
    """The paper's GB baseline, taken at its word.

    Builds a maximum-weight spanning forest by greedily accepting the
    heaviest edge that joins two trees; *every* leftover edge — whether
    or not it closes an odd cycle — is reported as a conflict.  This
    over-reports massively on dense layouts, which is exactly the
    paper's point in Table 1.
    """
    parent = {v: v for v in graph.nodes}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    removed: List[int] = []
    ordered = sorted(graph.live_edge_rows(),
                     key=lambda row: (-row[3], row[0]))
    for eid, u, v, _w in ordered:
        ra, rb = find(u), find(v)
        if ra == rb:
            removed.append(eid)
        else:
            parent[ra] = rb
    removed.sort()
    return BipartizationResult(
        removed=removed,
        weight=graph.total_weight(removed),
        method="greedy-spanning-tree",
    )


def greedy_odd_cycle_bipartization(graph: GeomGraph) -> BipartizationResult:
    """Greedy bipartization that only rejects odd-cycle-closing edges.

    Edges are offered heaviest-first to a parity union-find; an edge is
    a conflict only when the structure proves its endpoints must share a
    color.  Still suboptimal (greedy), but a far stronger baseline than
    the literal spanning-tree GB — reported as an ablation.
    """
    dsu = ParityDSU()
    for node in graph.nodes:
        dsu.add(node)
    removed: List[int] = []
    ordered = sorted(graph.live_edge_rows(),
                     key=lambda row: (-row[3], row[0]))
    for eid, u, v, _w in ordered:
        if u == v or not dsu.union_unequal(u, v):
            removed.append(eid)
    removed.sort()
    return BipartizationResult(
        removed=removed,
        weight=graph.total_weight(removed),
        method="greedy-odd-cycle",
    )
