"""Gadget reductions from the T-join problem to perfect matching.

This is the paper's §3.1.2 contribution.  Each node ``v`` of the T-join
instance becomes a *gadget*: one matching-graph node per incident edge,
flagged *true* (edge assigned to ``v``) or *ghost* (assigned to the other
endpoint).  The assignment is chosen so that every node is assigned a
number of edges with the parity of its T-membership.  Gadget nodes are
pairwise connected with weights

    true-true: 0      ghost-true: w(ghost's edge)
    ghost-ghost: w(e) + w(e')

and each edge's true and ghost node are joined through a 0-weight dummy
node.  A perfect matching must match every dummy to one side; the edge is
in the T-join iff the dummy takes the *true* side (equivalently: the
ghost is matched inside its gadget, paying w(e) exactly once).

Correctness sketch (proved in the tests against the shortest-path
solver): inside gadget ``v`` every node is either dummy-matched or
intra-matched and the intra-matched count is even, so

    deg_J(v) = #(assigned, dummy-matched) + #(unassigned, intra-matched)
             = a_v - #(assigned, intra) + #(unassigned, intra)
             = a_v + #intra  (mod 2)  =  a_v  (mod 2)  =  [v in T],

and the matching weight is exactly the total weight of intra-matched
ghosts, i.e. w(J).

Two details the paper leaves implicit:

* An assignment with ``a_v = [v in T] (mod 2)`` exists iff the component
  satisfies ``|E| = |T| (mod 2)`` (the assigned counts sum to |E|).
  Since |T| is always even per component, we add a 0-weight *pendant*
  edge to components with an odd edge count; the pendant's ghost gadget
  has no intra partner, so the pendant can never enter the T-join.
  (The paper instead allows assigning an edge "to both endpoints".)
* The *divide-node decomposition* (paper Fig. 4) splits a size-k gadget
  clique into chunks chained by divide-node *pairs* joined by a 0-weight
  edge: matching the pair to itself carries nothing across the boundary
  and matching each member into its side carries one intra-pairing
  across, which suffices because intra-pair cost only depends on which
  nodes are intra-matched, not on who pairs with whom.  A chunk size of
  1 reproduces the ASP-DAC'01 *optimized gadgets* (cliques of size <= 3);
  ``None`` keeps one clique per gadget — the paper's generalized gadget
  in its most node-frugal form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .geomgraph import GeomGraph
from .matching import min_weight_perfect_matching
from .tjoin import check_feasible


@dataclass(frozen=True)
class _InternalEdge:
    """Edge of the (pendant-augmented) T-join instance."""

    index: int
    u: int
    v: int
    weight: int
    orig_id: Optional[int]  # None for pendant edges


@dataclass
class GadgetGraph:
    """The matching instance produced by the reduction."""

    matching_graph: GeomGraph
    # Per internal edge: (original edge id, dummy node, assigned-side node).
    selectors: List[Tuple[Optional[int], int, int]]
    num_divide_nodes: int

    @property
    def num_nodes(self) -> int:
        return self.matching_graph.num_nodes()

    @property
    def num_edges(self) -> int:
        return self.matching_graph.num_edges()


def _internal_edges(graph: GeomGraph, tset: Set[int]) -> List[_InternalEdge]:
    """Collect non-self-loop edges and add pendants for odd components."""
    edges: List[_InternalEdge] = []
    for eid, u, v, w in graph.live_edge_rows():
        if u != v:
            edges.append(_InternalEdge(len(edges), u, v, w, eid))

    synthetic = max(graph.nodes, default=0) + 1
    comp_edges: Dict[int, int] = {}
    comp_anchor: Dict[int, int] = {}
    comp_of: Dict[int, int] = {}
    for ci, comp in enumerate(graph.connected_components()):
        for node in comp:
            comp_of[node] = ci
        comp_anchor[ci] = comp[0]
        comp_edges[ci] = 0
    for e in edges:
        comp_edges[comp_of[e.u]] += 1
    for ci, count in sorted(comp_edges.items()):
        if count % 2 == 1:
            edges.append(_InternalEdge(len(edges), comp_anchor[ci],
                                       synthetic, 0, None))
            synthetic += 1
    return edges


def _assign_edges(edges: Sequence[_InternalEdge], tset: Set[int]
                  ) -> List[int]:
    """Assign each edge to one endpoint so a_v = [v in T] (mod 2).

    Spanning-forest sweep: non-tree edges go to their ``u`` endpoint;
    tree edges are then fixed bottom-up so each non-root node reaches
    its target parity; the pendant augmentation guarantees the root
    works out.  Returns the assigned endpoint per edge index.
    """
    adj: Dict[int, List[int]] = {}
    for e in edges:
        adj.setdefault(e.u, []).append(e.index)
        adj.setdefault(e.v, []).append(e.index)

    assigned: List[Optional[int]] = [None] * len(edges)
    parent_edge: Dict[int, Optional[int]] = {}
    order: List[int] = []
    visited: Set[int] = set()
    tree_edges: Set[int] = set()
    for root in sorted(adj):
        if root in visited:
            continue
        visited.add(root)
        parent_edge[root] = None
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            for eidx in adj[node]:
                e = edges[eidx]
                nxt = e.v if e.u == node else e.u
                if nxt not in visited:
                    visited.add(nxt)
                    parent_edge[nxt] = eidx
                    tree_edges.add(eidx)
                    stack.append(nxt)

    for e in edges:
        if e.index not in tree_edges:
            assigned[e.index] = e.u

    count: Dict[int, int] = {v: 0 for v in adj}
    for e in edges:
        if assigned[e.index] is not None:
            count[assigned[e.index]] += 1

    for node in reversed(order):
        eidx = parent_edge[node]
        if eidx is None:
            target = 1 if node in tset else 0
            if count[node] % 2 != target:
                raise AssertionError(
                    "root parity violated; pendant augmentation is broken")
            continue
        target = 1 if node in tset else 0
        e = edges[eidx]
        other = e.v if e.u == node else e.u
        if count[node] % 2 != target:
            assigned[eidx] = node
            count[node] += 1
        else:
            assigned[eidx] = other
            count[other] += 1
    if any(a is None for a in assigned):
        raise AssertionError("unassigned edge after spanning-forest sweep")
    return assigned  # type: ignore[return-value]


def build_gadget_graph(graph: GeomGraph, tset: Set[int],
                       max_clique_size: Optional[int] = None) -> GadgetGraph:
    """Construct the matching instance for a T-join problem.

    Args:
        graph: T-join instance (non-negative weights).
        tset: nodes that must have odd join-degree.
        max_clique_size: chunk size of the divide-node decomposition;
            ``None`` = one clique per gadget (generalized gadget),
            ``1`` = ASP-DAC'01 optimized gadgets (cliques <= 3).
    """
    check_feasible(graph, tset)
    if max_clique_size is not None and max_clique_size < 1:
        raise ValueError("max_clique_size must be >= 1 or None")
    edges = _internal_edges(graph, tset)
    assigned = _assign_edges(edges, tset)

    # Nodes are dense sequential ints and edges are appended in one
    # deterministic order, so the whole graph is buffered and built
    # through the bulk add_nodes/add_edge_rows paths — same ids, same
    # iteration order, a fraction of the construction cost (this
    # builder runs once per odd cycle chip-wide).
    mg = GeomGraph(name=f"{graph.name}#gadget")
    rows: List[Tuple[int, int, int, str]] = []
    next_node = 0

    def new_node() -> int:
        nonlocal next_node
        next_node += 1
        return next_node - 1

    # Per-edge gadget members: (edge index, endpoint) -> matching node.
    member: Dict[Tuple[int, int], int] = {}
    cost: Dict[int, int] = {}

    incident: Dict[int, List[int]] = {}
    for e in edges:
        incident.setdefault(e.u, []).append(e.index)
        incident.setdefault(e.v, []).append(e.index)

    num_divide = 0
    for node in sorted(incident):
        locals_: List[int] = []
        for eidx in incident[node]:
            m = new_node()
            member[(eidx, node)] = m
            cost[m] = 0 if assigned[eidx] == node else edges[eidx].weight
            locals_.append(m)

        if max_clique_size is None:
            chunks = [locals_]
        else:
            chunks = [locals_[i:i + max_clique_size]
                      for i in range(0, len(locals_), max_clique_size)]

        prev_carry: Optional[int] = None
        for ci, chunk in enumerate(chunks):
            clique = list(chunk)
            if prev_carry is not None:
                clique.append(prev_carry)
            if ci + 1 < len(chunks):
                d_out = new_node()
                d_in = new_node()
                cost[d_out] = 0
                cost[d_in] = 0
                num_divide += 2
                rows.append((d_out, d_in, 0, "divide-pair"))
                clique.append(d_out)
                prev_carry = d_in
            else:
                prev_carry = None
            for i, a in enumerate(clique):
                for b in clique[i + 1:]:
                    rows.append((a, b, cost[a] + cost[b], "intra"))

    selectors: List[Tuple[Optional[int], int, int]] = []
    for e in edges:
        dummy = new_node()
        cost[dummy] = 0
        mu = member[(e.index, e.u)]
        mv = member[(e.index, e.v)]
        rows.append((dummy, mu, 0, "dummy"))
        rows.append((dummy, mv, 0, "dummy"))
        assigned_node = mu if assigned[e.index] == e.u else mv
        selectors.append((e.orig_id, dummy, assigned_node))

    mg.add_nodes(range(next_node))
    mg.add_edge_rows(rows)
    return GadgetGraph(matching_graph=mg, selectors=selectors,
                       num_divide_nodes=num_divide)


def extract_tjoin(gadget: GadgetGraph, matched_edge_ids: Sequence[int]
                  ) -> List[int]:
    """Read the T-join off a perfect matching of the gadget graph."""
    mate: Dict[int, int] = {}
    mg = gadget.matching_graph
    for eid in matched_edge_ids:
        e = mg.edge(eid)
        mate[e.u] = e.v
        mate[e.v] = e.u
    join: List[int] = []
    for orig_id, dummy, assigned_node in gadget.selectors:
        if mate.get(dummy) == assigned_node and orig_id is not None:
            join.append(orig_id)
    return sorted(join)


def min_tjoin_gadget(graph: GeomGraph, tset: Set[int],
                     max_clique_size: Optional[int] = None) -> List[int]:
    """Minimum-weight T-join via the gadget/perfect-matching reduction.

    Components containing no T node contribute nothing to a minimum
    T-join (weights are non-negative), so the gadget is only built over
    the T-bearing components — on conflict-sparse layouts this shrinks
    the matching instance by orders of magnitude.
    """
    if not tset:
        return []
    check_feasible(graph, tset)
    relevant: Set[int] = set()
    for comp in graph.connected_components():
        if tset.intersection(comp):
            relevant.update(comp)
    sub = graph.subgraph(relevant)
    gadget = build_gadget_graph(sub, tset & relevant, max_clique_size)
    matched = min_weight_perfect_matching(gadget.matching_graph)
    sub_join = extract_tjoin(gadget, matched)
    return sorted(sub.edge(eid).tag[1] for eid in sub_join)
